package protocols

import "github.com/psharp-go/psharp"

// Raft leader election (paper reference [22], implemented — like the
// paper's version — from scratch using the original paper as reference):
// five server machines with per-server election-timer machines. Timers fire
// nondeterministically within a bounded budget; a timed-out server starts an
// election for the next term, votes for itself and requests votes from its
// peers. Voters grant at most one vote per term. A candidate reaching a
// majority becomes leader, announces itself to a checker machine and
// heartbeats its peers. The safety property is Raft's Election Safety: at
// most one leader per term, asserted by the checker (keyed by term, so
// message reordering cannot cause false alarms).
//
// Both variants retry a stalled election once by re-broadcasting the vote
// request for the same term (a deliberate implementation choice — voters
// re-grant to the candidate they already voted for, as Raft prescribes for
// duplicate requests). The correct candidate tallies votes in a per-voter
// set, so the duplicate grant is harmless; the buggy candidate counts
// grants with a bare counter and double-counts the re-granted vote. The
// violation needs a split vote, a retry, and a second candidate winning the
// same term with the remaining voters — the same kind of rare, deep
// interleaving that makes the paper's Raft bug the hardest in Table 2 (2%
// of random schedules, missed by DFS and CHESS).

type rfServerConfig struct {
	psharp.EventBase
	Peers   []psharp.MachineID
	Timer   psharp.MachineID
	Checker psharp.MachineID
}

type rfArm struct{ psharp.EventBase }

type rfTimeout struct{ psharp.EventBase }

type rfRequestVote struct {
	psharp.EventBase
	Term      int
	Candidate psharp.MachineID
}

type rfVoteResp struct {
	psharp.EventBase
	Term    int
	Granted bool
	From    psharp.MachineID
}

type rfHeartbeat struct {
	psharp.EventBase
	Term   int
	Leader psharp.MachineID
}

type rfLeaderElected struct {
	psharp.EventBase
	Term   int
	Leader psharp.MachineID
}

type rfServer struct {
	psharp.StaticBase
	peers   []psharp.MachineID
	timer   psharp.MachineID
	checker psharp.MachineID
	buggy   bool

	term     int
	votedFor psharp.MachineID
	votes    map[psharp.MachineID]bool // correct tally
	count    int                       // buggy tally
	retried  bool
}

// The seeded bug is a runtime branch on the buggy instance field (bare
// counter vs per-voter set), so both variants share one schema.
func (*rfServer) ConfigureType(sc *psharp.Schema) {
	majority := func(s *rfServer) int { return (len(s.peers)+1)/2 + 1 }

	// vote handles a RequestVote in any role; it returns true when the
	// server stepped down to a newer term.
	vote := func(s *rfServer, ctx *psharp.Context, rv *rfRequestVote) bool {
		stepDown := false
		if rv.Term > s.term {
			s.term = rv.Term
			s.votedFor = psharp.MachineID{}
			stepDown = true
		}
		granted := false
		if rv.Term == s.term && (s.votedFor.IsNil() || s.votedFor == rv.Candidate) {
			s.votedFor = rv.Candidate
			granted = true
		}
		ctx.Write("server.votedFor")
		ctx.Send(rv.Candidate, &rfVoteResp{Term: rv.Term, Granted: granted, From: ctx.ID()})
		return stepDown
	}

	startElection := func(s *rfServer, ctx *psharp.Context) {
		s.term++
		s.votedFor = ctx.ID()
		s.votes = map[psharp.MachineID]bool{ctx.ID(): true}
		s.count = 1
		s.retried = false
		for _, p := range s.peers {
			ctx.Send(p, &rfRequestVote{Term: s.term, Candidate: ctx.ID()})
		}
		ctx.Send(s.timer, &rfArm{})
	}

	tally := func(s *rfServer, resp *rfVoteResp) int {
		if s.buggy {
			// The seeded bug: a bare counter double-counts the duplicate
			// grant a voter sends in response to the retry broadcast.
			s.count++
			return s.count
		}
		s.votes[resp.From] = true
		return len(s.votes)
	}

	sc.Start("Boot").
		Defer(&rfRequestVote{}).
		Defer(&rfHeartbeat{}).
		Defer(&rfTimeout{}).
		OnEventDoM(&rfServerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*rfServer)
			cfg := ev.(*rfServerConfig)
			s.peers = cfg.Peers
			s.timer = cfg.Timer
			s.checker = cfg.Checker
			ctx.Send(s.timer, &rfArm{})
			ctx.Goto("Follower")
		})

	sc.State("Follower").
		OnEventDoM(&rfTimeout{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			startElection(m.(*rfServer), ctx)
			ctx.Goto("Candidate")
		}).
		OnEventDoM(&rfRequestVote{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			vote(m.(*rfServer), ctx, ev.(*rfRequestVote))
		}).
		OnEventDoM(&rfHeartbeat{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*rfServer)
			hb := ev.(*rfHeartbeat)
			if hb.Term > s.term {
				s.term = hb.Term
				s.votedFor = psharp.MachineID{}
			}
		}).
		Ignore(&rfVoteResp{})

	sc.State("Candidate").
		OnEventDoM(&rfVoteResp{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*rfServer)
			resp := ev.(*rfVoteResp)
			if resp.Term != s.term || !resp.Granted {
				return
			}
			if tally(s, resp) < majority(s) {
				return
			}
			ctx.Send(s.checker, &rfLeaderElected{Term: s.term, Leader: ctx.ID()})
			for _, p := range s.peers {
				ctx.Send(p, &rfHeartbeat{Term: s.term, Leader: ctx.ID()})
			}
			ctx.Goto("Leader")
		}).
		OnEventDoM(&rfTimeout{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*rfServer)
			if !s.retried {
				// Retry the stalled election once: re-broadcast the vote
				// request for the same term.
				s.retried = true
				for _, p := range s.peers {
					ctx.Send(p, &rfRequestVote{Term: s.term, Candidate: ctx.ID()})
				}
				ctx.Send(s.timer, &rfArm{})
				return
			}
			startElection(s, ctx)
		}).
		OnEventDoM(&rfRequestVote{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			if vote(m.(*rfServer), ctx, ev.(*rfRequestVote)) {
				ctx.Goto("Follower")
			}
		}).
		OnEventDoM(&rfHeartbeat{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*rfServer)
			hb := ev.(*rfHeartbeat)
			if hb.Term >= s.term {
				if hb.Term > s.term {
					s.term = hb.Term
					s.votedFor = psharp.MachineID{}
				}
				ctx.Goto("Follower")
			}
		})

	sc.State("Leader").
		OnEventDoM(&rfRequestVote{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			if vote(m.(*rfServer), ctx, ev.(*rfRequestVote)) {
				ctx.Goto("Follower")
			}
		}).
		OnEventDoM(&rfHeartbeat{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*rfServer)
			hb := ev.(*rfHeartbeat)
			if hb.Term > s.term {
				s.term = hb.Term
				s.votedFor = psharp.MachineID{}
				ctx.Goto("Follower")
			}
		}).
		Ignore(&rfVoteResp{}).
		Ignore(&rfTimeout{})
}

// rfTimer fires a bounded number of timeouts; each rfArm spends one unit of
// budget. The *scheduling* of the timeout delivery is the paper's timing
// nondeterminism.
type rfTimer struct {
	psharp.StaticBase
	server psharp.MachineID
	budget int
}

type rfTimerConfig struct {
	psharp.EventBase
	Server psharp.MachineID
	Budget int
}

func (*rfTimer) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&rfArm{}).
		OnEventDoM(&rfTimerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			t := m.(*rfTimer)
			cfg := ev.(*rfTimerConfig)
			t.server = cfg.Server
			t.budget = cfg.Budget
			ctx.Goto("Armed")
		})
	sc.State("Armed").
		OnEventDoM(&rfArm{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			t := m.(*rfTimer)
			if t.budget == 0 {
				return
			}
			t.budget--
			ctx.Send(t.server, &rfTimeout{})
		})
}

// rfElectionSafetyMonitor is the monitor-expressed Election Safety
// specification: it observes every rfLeaderElected announcement at the
// send — before the checker machine dequeues it — and asserts at most one
// leader per term. On the buggy variant (double-counted duplicate grants)
// this is the specification that fires, as a BugMonitor attributed to the
// monitor, with the usual deterministically replayable trace.
type rfElectionSafetyMonitor struct {
	psharp.StaticBase
	leaders map[int]psharp.MachineID
}

func (*rfElectionSafetyMonitor) ConfigureType(sc *psharp.Schema) {
	sc.Start("Observing").
		OnEventDoM(&rfLeaderElected{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			mon := m.(*rfElectionSafetyMonitor)
			e := ev.(*rfLeaderElected)
			prev, ok := mon.leaders[e.Term]
			if !ok {
				mon.leaders[e.Term] = e.Leader
				return
			}
			// Branch before Assert: the variadic arguments would otherwise be
			// boxed on every observation, and this runs on the send hot path.
			if prev != e.Leader {
				ctx.Assert(false,
					"election safety violated: term %d has leaders %s and %s", e.Term, prev, e.Leader)
			}
		})
}

// rfChecker asserts Election Safety.
type rfChecker struct {
	psharp.StaticBase
	leaders map[int]psharp.MachineID
}

func (*rfChecker) ConfigureType(sc *psharp.Schema) {
	sc.Start("Checking").
		OnEventDoM(&rfLeaderElected{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*rfChecker)
			e := ev.(*rfLeaderElected)
			prev, ok := c.leaders[e.Term]
			if !ok {
				c.leaders[e.Term] = e.Leader
				return
			}
			ctx.Assert(prev == e.Leader,
				"election safety violated: term %d has leaders %s and %s", e.Term, prev, e.Leader)
		})
}

func raftBenchmark(buggy bool) Benchmark {
	const numServers = 5
	const timerBudget = 2
	return Benchmark{
		Name:     "Raft",
		Buggy:    buggy,
		MaxSteps: 10000,
		Machines: 2*numServers + 1,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("RaftServer", func() psharp.Machine { return &rfServer{buggy: buggy} })
			r.MustRegister("RaftTimer", func() psharp.Machine { return &rfTimer{} })
			r.MustRegister("RaftChecker", func() psharp.Machine {
				return &rfChecker{leaders: make(map[int]psharp.MachineID)}
			})
			checker := r.MustCreate("RaftChecker", nil)
			servers := make([]psharp.MachineID, numServers)
			timers := make([]psharp.MachineID, numServers)
			for i := range servers {
				servers[i] = r.MustCreate("RaftServer", nil)
				timers[i] = r.MustCreate("RaftTimer", nil)
				mustSend(r, timers[i], &rfTimerConfig{Server: servers[i], Budget: timerBudget})
			}
			for i, srv := range servers {
				peers := make([]psharp.MachineID, 0, numServers-1)
				for j, p := range servers {
					if j != i {
						peers = append(peers, p)
					}
				}
				mustSend(r, srv, &rfServerConfig{Peers: peers, Timer: timers[i], Checker: checker})
			}
		},
		Monitors: func(r *psharp.Runtime) {
			r.MustRegisterMonitor("ElectionSafety", func() psharp.Machine {
				return &rfElectionSafetyMonitor{leaders: make(map[int]psharp.MachineID)}
			})
		},
	}
}
