package psharp_test

import (
	"strings"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// Events shared by the semantics tests.

type evA struct{ psharp.EventBase }

type evB struct{ psharp.EventBase }

type evC struct{ psharp.EventBase }

type evNote struct {
	psharp.EventBase
	Tag string
}

// recorder appends tags of every note it receives.
type recorder struct{ log *[]string }

func (m *recorder) Configure(sc *psharp.Schema) {
	sc.Start("Recording").
		OnEventDo(&evNote{}, func(ctx *psharp.Context, ev psharp.Event) {
			*m.log = append(*m.log, ev.(*evNote).Tag)
		})
}

// runOne executes a single serialized iteration with a deterministic
// (first-enabled) schedule.
func runOne(t *testing.T, setup func(*psharp.Runtime)) psharp.IterationResult {
	t.Helper()
	dfs := sct.NewDFS()
	dfs.PrepareIteration(0)
	return psharp.RunTest(setup, psharp.TestConfig{Strategy: dfs, MaxSteps: 10000})
}

// TestDeferHoldsEventUntilStateChange checks the transition-function
// semantics: deferred events stay queued and are delivered after a state
// change, in order.
func TestDeferHoldsEventUntilStateChange(t *testing.T) {
	var log []string
	type gate struct{ log *[]string }
	configure := func(g *gate, sc *psharp.Schema) {
		sc.Start("Closed").
			Defer(&evA{}).
			OnEventGoto(&evB{}, "Open")
		sc.State("Open").
			OnEventDo(&evA{}, func(ctx *psharp.Context, ev psharp.Event) {
				*g.log = append(*g.log, "A")
			})
	}
	res := runOne(t, func(r *psharp.Runtime) {
		r.MustRegister("Gate", func() psharp.Machine {
			g := &gate{log: &log}
			return psharp.MachineFunc(func(sc *psharp.Schema) { configure(g, sc) })
		})
		id := r.MustCreate("Gate", nil)
		for i := 0; i < 2; i++ {
			if err := r.SendEvent(id, &evA{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.SendEvent(id, &evB{}); err != nil {
			t.Fatal(err)
		}
	})
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if got := strings.Join(log, ","); got != "A,A" {
		t.Fatalf("deferred events delivered %q, want \"A,A\"", got)
	}
}

// TestIgnoreDropsEvents checks that ignored events are silently discarded.
func TestIgnoreDropsEvents(t *testing.T) {
	handled := 0
	res := runOne(t, func(r *psharp.Runtime) {
		r.MustRegister("M", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					Ignore(&evA{}).
					OnEventDo(&evB{}, func(ctx *psharp.Context, ev psharp.Event) { handled++ })
			})
		})
		id := r.MustCreate("M", nil)
		mustSend(t, r, id, &evA{})
		mustSend(t, r, id, &evB{})
		mustSend(t, r, id, &evA{})
	})
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if handled != 1 {
		t.Fatalf("handled = %d, want 1", handled)
	}
}

// TestUnhandledEventIsBug checks the Section 6.1 runtime error.
func TestUnhandledEventIsBug(t *testing.T) {
	res := runOne(t, func(r *psharp.Runtime) {
		r.MustRegister("M", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S")
			})
		})
		id := r.MustCreate("M", nil)
		mustSend(t, r, id, &evA{})
	})
	if res.Bug == nil || res.Bug.Kind != psharp.BugUnhandledEvent {
		t.Fatalf("want unhandled-event bug, got %v", res.Bug)
	}
}

// TestRaiseBypassesQueue checks that raised events are handled before
// queued ones.
func TestRaiseBypassesQueue(t *testing.T) {
	var log []string
	res := runOne(t, func(r *psharp.Runtime) {
		r.MustRegister("M", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&evA{}, func(ctx *psharp.Context, ev psharp.Event) {
						log = append(log, "A")
						ctx.Raise(&evC{})
					}).
					OnEventDo(&evB{}, func(ctx *psharp.Context, ev psharp.Event) {
						log = append(log, "B")
					}).
					OnEventDo(&evC{}, func(ctx *psharp.Context, ev psharp.Event) {
						log = append(log, "C")
					})
			})
		})
		id := r.MustCreate("M", nil)
		mustSend(t, r, id, &evA{})
		mustSend(t, r, id, &evB{})
	})
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if got := strings.Join(log, ","); got != "A,C,B" {
		t.Fatalf("order %q, want \"A,C,B\" (raise bypasses the queue)", got)
	}
}

// TestHaltDropsQueueAndLaterSends checks halt semantics.
func TestHaltDropsQueueAndLaterSends(t *testing.T) {
	handled := 0
	res := runOne(t, func(r *psharp.Runtime) {
		r.MustRegister("M", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&evA{}, func(ctx *psharp.Context, ev psharp.Event) {
						handled++
						ctx.Halt()
					})
			})
		})
		id := r.MustCreate("M", nil)
		mustSend(t, r, id, &evA{})
		mustSend(t, r, id, &evA{})
		mustSend(t, r, id, &evA{})
	})
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if handled != 1 {
		t.Fatalf("handled = %d, want 1 (halt drops the queue)", handled)
	}
}

// TestGotoRunsExitAndEntry checks transition ordering: exit action, then
// the target's entry action with the triggering event as payload.
func TestGotoRunsExitAndEntry(t *testing.T) {
	var log []string
	res := runOne(t, func(r *psharp.Runtime) {
		r.MustRegister("M", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S1").
					OnExit(func(ctx *psharp.Context) { log = append(log, "exit-S1") }).
					OnEventGoto(&evNote{}, "S2")
				sc.State("S2").
					OnEntry(func(ctx *psharp.Context, ev psharp.Event) {
						log = append(log, "entry-S2:"+ev.(*evNote).Tag)
					})
			})
		})
		id := r.MustCreate("M", nil)
		mustSend(t, r, id, &evNote{Tag: "x"})
	})
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if got := strings.Join(log, ","); got != "exit-S1,entry-S2:x" {
		t.Fatalf("order %q, want exit then entry with payload", got)
	}
}

// TestDuplicateBindingRejected checks the Section 6.1 ambiguity error at
// configuration time.
func TestDuplicateBindingRejected(t *testing.T) {
	r := psharp.NewRuntime()
	r.MustRegister("M", func() psharp.Machine {
		return psharp.MachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").
				OnEventDo(&evA{}, func(ctx *psharp.Context, ev psharp.Event) {}).
				OnEventGoto(&evA{}, "S")
		})
	})
	if _, err := r.CreateMachine("M", nil); err == nil {
		t.Fatal("want a schema validation error for the double binding")
	}
	r.Stop()
}

// TestTraceRoundTrip checks the trace encoding used for replay files.
func TestTraceRoundTrip(t *testing.T) {
	done := 0
	setup := pingPongSetup(3, &done)
	rep := sct.Run(setup, sct.Options{Strategy: sct.NewRandom(5), Iterations: 1, MaxSteps: 1000})
	var buf strings.Builder
	trace := rep.FirstBugTrace
	if trace == nil {
		// No bug: record a fresh iteration's trace instead.
		res := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(5)), MaxSteps: 1000})
		trace = res.Trace
	}
	if err := trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := psharp.DecodeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != trace.Len() {
		t.Fatalf("round trip lost decisions: %d != %d", decoded.Len(), trace.Len())
	}
	res := sct.ReplayTrace(setup, decoded, psharp.TestConfig{MaxSteps: 1000})
	if res.Bug != nil {
		t.Fatalf("replay of a clean trace found a bug: %v", res.Bug)
	}
}

func mustPrepared(s *sct.Random) *sct.Random {
	s.PrepareIteration(0)
	return s
}

func mustSend(t *testing.T, r *psharp.Runtime, id psharp.MachineID, ev psharp.Event) {
	t.Helper()
	if err := r.SendEvent(id, ev); err != nil {
		t.Fatal(err)
	}
}
