package psharp

import "github.com/psharp-go/psharp/obs"

// RuntimeMetrics are the runtime's always-on operational counters: every
// field is a fixed-size atomic from the obs package, so recording costs one
// atomic op and never allocates — cheap enough to leave on in production
// and under the allocation-capped testing hot path alike.
type RuntimeMetrics struct {
	// Sends counts events successfully enqueued (machine sends, environment
	// sends, and internal re-queues of deferred raised events).
	Sends obs.Counter
	// DroppedSends counts events discarded because the target had halted.
	DroppedSends obs.Counter
	// MonitorDispatches counts (event, monitor) observation dispatches.
	MonitorDispatches obs.Counter
	// Creates counts machine instances created.
	Creates obs.Counter
	// MailboxMax is the high-water mark of any machine's queue depth.
	MailboxMax obs.MaxGauge
}

// RuntimeMetricsSnapshot is the JSON-friendly view of RuntimeMetrics.
type RuntimeMetricsSnapshot struct {
	Sends             int64 `json:"sends"`
	DroppedSends      int64 `json:"dropped_sends"`
	MonitorDispatches int64 `json:"monitor_dispatches"`
	Creates           int64 `json:"creates"`
	MailboxMax        int64 `json:"mailbox_max"`
}

// Metrics snapshots the runtime's operational counters. Under a TestHarness
// the counters accumulate across recycled iterations, so the snapshot
// describes the whole campaign, not the last schedule.
func (r *Runtime) Metrics() RuntimeMetricsSnapshot {
	return RuntimeMetricsSnapshot{
		Sends:             r.metrics.Sends.Load(),
		DroppedSends:      r.metrics.DroppedSends.Load(),
		MonitorDispatches: r.metrics.MonitorDispatches.Load(),
		Creates:           r.metrics.Creates.Load(),
		MailboxMax:        r.metrics.MailboxMax.Load(),
	}
}

// WithCoverage attaches a state-transition coverage set to a production
// runtime: every handled (machine type, state, event) dispatch is recorded
// into it. Bug-finding iterations attach coverage via TestConfig.Coverage
// instead, so one set can accumulate across a whole exploration campaign.
func WithCoverage(cov *obs.StateEventCoverage) Option {
	return func(r *Runtime) { r.cover = cov }
}
