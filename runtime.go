package psharp

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/psharp-go/psharp/internal/vclock"
	"github.com/psharp-go/psharp/obs"
)

// Runtime executes P# programs (paper Section 6.1). It keeps the registry
// of machine types, creates machine instances, routes events, and detects
// quiescence and failures. A Runtime operates in one of two modes:
//
//   - production (NewRuntime): machines run concurrently, one goroutine
//     each, with blocking queues;
//   - bug-finding (RunTest): execution is serialized under a Strategy.
type Runtime struct {
	mu        sync.Mutex
	factories map[string]func() Machine
	machines  []*machineInstance
	nextSeq   uint64
	sendSeq   uint64

	// schemas caches the compiled schema per machine type. Static types
	// (StaticMachine) are compiled exactly once, at registration, and every
	// create reuses the frozen form; a nil entry records that the type uses
	// the closure form, whose schema must be rebuilt per instance. A
	// TestHarness keeps this cache across recycled iterations.
	schemas map[string]*compiledSchema
	// schemaCompiles counts schema compilations (both forms) since
	// construction; the compile-once tests and the schema-cache benchmark
	// probe observe it.
	schemaCompiles int
	// noSchemaCache forces per-create schema rebuilds even for static
	// types, so benchmarks can quantify what the cache saves.
	noSchemaCache bool

	// monitors are the registered specification monitors (see monitor.go):
	// synchronous observers dispatched at every send and raise.
	monitors []*monitorInstance
	// monitorSchemas caches compiled monitor schemas per name, with the same
	// static-vs-closure discipline as schemas (nil entry = closure form).
	monitorSchemas map[string]*compiledSchema
	// monMu guards monitors (list and dispatch) in production mode, where
	// machines send concurrently with each other and with registration; the
	// testing runtime is serialized and skips it on the dispatch path.
	monMu sync.Mutex
	// monCount mirrors len(monitors) so production-mode sends can skip the
	// monMu lock entirely when no monitor is registered.
	monCount atomic.Int32

	test *controller // non-nil in bug-finding mode

	// metrics are the always-on operational counters (see metrics.go); all
	// fields are atomics, so recording needs no lock and never allocates.
	metrics RuntimeMetrics
	// cover, when non-nil, records every handled (machine type, state,
	// event) dispatch. Set by WithCoverage in production mode and by
	// TestConfig.Coverage per bug-finding iteration.
	cover *obs.StateEventCoverage

	// Production-mode accounting: busy counts outstanding units of work
	// (queued events and machine initializations); Wait blocks until it
	// reaches zero (quiescence) or a failure is recorded.
	busy    int
	qcond   *sync.Cond
	failure *Bug
	stopped bool

	rngState uint64
	logw     io.Writer
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithLog directs runtime execution logging to w.
func WithLog(w io.Writer) Option { return func(r *Runtime) { r.logw = w } }

// WithSeed seeds the production runtime's pseudo-random choice source.
func WithSeed(seed uint64) Option { return func(r *Runtime) { r.rngState = seed } }

// WithoutSchemaCache disables the per-type compiled-schema cache: every
// create rebuilds and revalidates the machine's schema, which is what the
// closure declaration form always pays. It exists so the benchmark probes
// can quantify what the cache saves on a static-form program; there is no
// reason to use it otherwise.
func WithoutSchemaCache() Option { return func(r *Runtime) { r.noSchemaCache = true } }

// NewRuntime returns a production-mode runtime.
func NewRuntime(opts ...Option) *Runtime {
	r := &Runtime{
		factories:      make(map[string]func() Machine),
		schemas:        make(map[string]*compiledSchema),
		monitorSchemas: make(map[string]*compiledSchema),
		rngState:       1,
	}
	r.qcond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	return r
}

// validateTypeName rejects machine-type and monitor names that would
// corrupt the trace format: Trace.Encode writes schedule records as
// "s <type> <seq>" with whitespace-separated fields and no quoting, so a
// name containing whitespace could not round-trip through DecodeTrace.
func validateTypeName(op, name string) error {
	if strings.ContainsAny(name, " \t\n\r") {
		return fmt.Errorf("psharp: %s(%q): name must not contain whitespace (trace records are whitespace-separated)", op, name)
	}
	return nil
}

// Register associates a machine type name with a factory. All machine types
// must be registered before any instance is created (the paper requires
// registration up front so the analyzable machine set is closed).
//
// Registration is where static machine types pay their one-time schema
// cost: one probe instance is taken from the factory, and if it implements
// StaticMachine its schema is compiled and validated here, once, then
// reused by every create of the type. Invalid static schemas are therefore
// reported by Register, not create. Closure-form types are probed once to
// record the form and keep compiling per instance.
//
// Because of the probe, the factory must be a pure constructor: it runs
// once here with the instance discarded, so a factory with side effects
// (shared counters, instance tracking, resource pools) would observe one
// phantom call per registered type.
func (r *Runtime) Register(name string, factory func() Machine) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || factory == nil {
		return fmt.Errorf("psharp: Register(%q): name and factory must be non-empty", name)
	}
	if err := validateTypeName("Register", name); err != nil {
		return err
	}
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("psharp: machine type %q registered twice", name)
	}
	if _, known := r.schemas[name]; !known {
		if sm, ok := factory().(StaticMachine); ok {
			s := newSchema()
			sm.ConfigureType(s)
			cs, err := s.compile(name)
			if err != nil {
				return err
			}
			r.schemaCompiles++
			if r.noSchemaCache {
				// Measurement mode: the schema was still validated here
				// (Register's error contract holds), but create rebuilds it
				// per instance, so record only that the type is known.
				r.schemas[name] = nil
			} else {
				r.schemas[name] = cs
			}
		} else {
			r.schemas[name] = nil // closure form: compiled per instance
		}
	}
	r.factories[name] = factory
	return nil
}

// MustRegister is Register that panics on error; convenient in test setups.
func (r *Runtime) MustRegister(name string, factory func() Machine) {
	if err := r.Register(name, factory); err != nil {
		panic(err)
	}
}

// CreateMachine creates a machine from outside any machine (the program's
// environment); the entry action of its initial state runs asynchronously.
func (r *Runtime) CreateMachine(machineType string, payload Event) (MachineID, error) {
	return r.create(machineType, payload, nil)
}

// MustCreate is CreateMachine that panics on error; convenient in test
// setups where a failure to create is a harness bug, not a program bug.
func (r *Runtime) MustCreate(machineType string, payload Event) MachineID {
	id, err := r.CreateMachine(machineType, payload)
	if err != nil {
		panic(err)
	}
	return id
}

// SendEvent sends an event from outside any machine.
func (r *Runtime) SendEvent(target MachineID, ev Event) error {
	if ev == nil {
		return fmt.Errorf("psharp: SendEvent: nil event")
	}
	r.enqueue(target, ev, MachineID{}, false)
	return nil
}

// create instantiates a machine; creator is nil for environment creates.
func (r *Runtime) create(machineType string, payload Event, creator *machineInstance) (MachineID, error) {
	r.mu.Lock()
	factory, ok := r.factories[machineType]
	if !ok {
		r.mu.Unlock()
		return MachineID{}, fmt.Errorf("psharp: unknown machine type %q", machineType)
	}
	logic := factory()
	schema := r.schemas[machineType]
	if schema == nil {
		// Closure form (or cache disabled): build and validate a schema for
		// this instance. Static types never reach here on the cached path —
		// their frozen schema was compiled at registration.
		var err error
		schema, err = r.compileInstanceLocked(machineType, logic)
		if err != nil {
			r.mu.Unlock()
			return MachineID{}, err
		}
	}
	r.nextSeq++
	id := MachineID{Type: machineType, Seq: r.nextSeq}
	var m *machineInstance
	if c := r.test; c != nil {
		// Bug-finding mode reuses pooled instances and parked goroutines.
		m = c.acquireInstance(r, id, logic, schema)
	} else {
		m = newMachineInstance(r, id, logic, schema)
		r.busy++ // initialization counts as outstanding work
	}
	r.machines = append(r.machines, m)
	r.mu.Unlock()

	r.metrics.Creates.Inc()
	if r.logging() {
		r.logf("created %s", id)
	}
	if c := r.test; c != nil {
		creatorIdx := 0
		if creator != nil {
			creatorIdx = int(creator.id.Seq)
		}
		c.onCreate(m, creatorIdx)
		c.wg.Add(1)
		// Remember the creation payload: a FaultCrash with Restart reboots
		// the machine by re-delivering it (see controller.restartMachine).
		m.birth = payload
		m.job <- payload // hand the iteration to the parked goroutine
		if creator != nil {
			if c.observing {
				c.noteCreate(creator, id)
			}
			creator.yieldPoint() // create-machine is a scheduling point
		}
		return id, nil
	}
	go func() {
		m.run(payload)
	}()
	return id, nil
}

// compileInstanceLocked builds, validates and freezes a schema for one
// machine instance: the closure declaration form's per-create cost, and the
// WithoutSchemaCache measurement path (where it configures via the static
// declaration if the type has one).
func (r *Runtime) compileInstanceLocked(machineType string, logic Machine) (*compiledSchema, error) {
	s := newSchema()
	if sm, ok := logic.(StaticMachine); ok {
		sm.ConfigureType(s)
	} else {
		logic.Configure(s)
	}
	r.schemaCompiles++
	return s.compile(machineType)
}

// enqueue routes an event to target's queue. isMachineSend marks sends
// performed by machine actions (which are scheduling points in test mode);
// environment sends and internal re-queues are not.
func (r *Runtime) enqueue(target MachineID, ev Event, sender MachineID, isMachineSend bool) {
	if isMachineSend || sender.IsNil() {
		// Specification monitors observe the send itself — machine sends and
		// environment sends, but not internal re-queues of deferred raised
		// events, which would double-count one observation. Dispatch happens
		// before the send's scheduling point and regardless of whether the
		// target can still receive the event.
		r.observeMonitors(ev)
	}
	m := r.machineByID(target)
	if m == nil {
		msg := fmt.Sprintf("send of %s to unknown machine %s", eventName(ev), target)
		if r.test != nil && isMachineSend {
			panic(assertFailed{msg: msg})
		}
		r.fail(&Bug{Kind: BugPanic, Machine: sender, Message: msg})
		return
	}
	c := r.test
	if c != nil && c.cfg.ChessLike && isMachineSend {
		// CHESS granularity: acquiring the queue lock of the thread-safe
		// blocking queue is a visible synchronizing operation of its own.
		if sm := r.machineByID(sender); sm != nil {
			sm.yieldPoint()
		}
	}

	// The per-send fault query: issued on the sending machine's goroutine
	// for every machine send when faults are enabled, before delivery, so
	// the query sequence is a function of the schedule alone. Sends to an
	// already-halted target ignore the answer (there is nothing to fault).
	fault := FaultAction{}
	if c != nil && isMachineSend && c.cfg.Faults != nil {
		fault = c.nextSendFault(target)
	}

	var clock vclock.VC
	if c != nil && c.det != nil {
		clock = c.det.Send(int(sender.Seq))
	}

	m.mu.Lock()
	if m.halted {
		m.mu.Unlock()
		r.metrics.DroppedSends.Inc()
		if r.logging() {
			r.logf("dropped %s to halted %s", eventName(ev), target)
		}
	} else if fault.Kind == FaultDrop {
		m.mu.Unlock()
		c.faults.Drops++
		r.metrics.DroppedSends.Inc()
		if r.logging() {
			r.logf("fault: dropped %s to %s", eventName(ev), target)
		}
	} else {
		r.mu.Lock()
		r.sendSeq++
		seq := r.sendSeq
		var seq2 uint64
		if fault.Kind == FaultDuplicate {
			r.sendSeq++
			seq2 = r.sendSeq
		}
		if r.test == nil {
			r.busy++
		}
		r.mu.Unlock()
		env := envelope{event: ev, sender: sender, clock: clock, seq: seq}
		switch fault.Kind {
		case FaultDuplicate:
			m.queue = append(m.queue, env,
				envelope{event: ev, sender: sender, clock: clock, seq: seq2})
			c.faults.Duplicates++
		case FaultReorder:
			// Break FIFO: the message overtakes everything already queued.
			m.queue = append(m.queue, envelope{})
			copy(m.queue[1:], m.queue)
			m.queue[0] = env
			c.faults.Reorders++
		default:
			m.queue = append(m.queue, env)
		}
		depth := int64(len(m.queue))
		m.cond.Signal()
		m.mu.Unlock()
		r.metrics.Sends.Inc()
		r.metrics.MailboxMax.Observe(depth)
		if r.logging() {
			r.logf("%s -> %s: %s", sender, target, eventName(ev))
		}
		if c != nil {
			c.onEnqueue(m)
		}
	}

	if c != nil && isMachineSend {
		if sm := r.machineByID(sender); sm != nil {
			if c.observing {
				c.noteSend(sm, target, ev)
			}
			sm.yieldPoint() // send is a scheduling point (Section 6.2)
		}
	}
}

func (r *Runtime) machineByID(id MachineID) *machineInstance {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id.Seq == 0 || int(id.Seq) > len(r.machines) {
		return nil
	}
	return r.machines[id.Seq-1]
}

// eventConsumed is production-mode work accounting: one queued event was
// handled or dropped.
func (r *Runtime) eventConsumed() {
	if r.test != nil {
		return
	}
	r.mu.Lock()
	r.busy--
	if r.busy <= 0 {
		r.qcond.Broadcast()
	}
	r.mu.Unlock()
}

// initDone marks a machine's initialization complete; see create.
func (r *Runtime) initDone() {
	if r.test != nil {
		return
	}
	r.mu.Lock()
	r.busy--
	if r.busy <= 0 {
		r.qcond.Broadcast()
	}
	r.mu.Unlock()
}

func (r *Runtime) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// fail records the first failure and stops the runtime.
func (r *Runtime) fail(b *Bug) {
	r.mu.Lock()
	if r.failure == nil {
		r.failure = b
	}
	r.stopped = true
	machines := append([]*machineInstance(nil), r.machines...)
	r.qcond.Broadcast()
	r.mu.Unlock()
	for _, m := range machines {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// Failure returns the first recorded failure, if any.
func (r *Runtime) Failure() *Bug {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failure
}

// Wait blocks until the program is quiescent — every queue is empty and
// every machine idle — or a failure has been recorded, which it returns.
// Only valid in production mode.
func (r *Runtime) Wait() error {
	if r.test != nil {
		panic("psharp: Wait is not available in bug-finding mode")
	}
	r.mu.Lock()
	for r.busy > 0 && r.failure == nil && !r.stopped {
		r.qcond.Wait()
	}
	var err error
	if r.failure != nil {
		err = r.failure
	}
	r.mu.Unlock()
	return err
}

// Stop shuts the runtime down: machines blocked on empty queues exit.
func (r *Runtime) Stop() {
	r.mu.Lock()
	r.stopped = true
	machines := append([]*machineInstance(nil), r.machines...)
	r.qcond.Broadcast()
	r.mu.Unlock()
	for _, m := range machines {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// NumMachines returns how many machines have been created so far.
func (r *Runtime) NumMachines() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.machines)
}

// randomBool resolves a controlled nondeterministic boolean choice.
func (r *Runtime) randomBool(m *machineInstance) bool {
	if c := r.test; c != nil {
		return c.nextBool()
	}
	return r.nextRand()&1 == 1
}

// randomInt resolves a controlled nondeterministic integer choice in [0,n).
func (r *Runtime) randomInt(m *machineInstance, n int) int {
	if c := r.test; c != nil {
		return c.nextInt(n)
	}
	return int(r.nextRand() % uint64(n))
}

// nextRand steps the production-mode SplitMix64 generator.
func (r *Runtime) nextRand() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rngState += 0x9e3779b97f4a7c15
	z := r.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// access feeds the happens-before race detector in RD-on mode.
func (r *Runtime) access(m *machineInstance, location string, kind vclock.AccessKind) {
	c := r.test
	if c == nil || c.det == nil {
		return
	}
	c.det.Access(int(m.id.Seq), location, kind)
}

// logging reports whether execution logging is enabled. Hot paths check it
// before calling logf so a disabled log costs no interface boxing.
func (r *Runtime) logging() bool { return r.logw != nil }

func (r *Runtime) logf(format string, args ...any) {
	if r.logw == nil {
		return
	}
	fmt.Fprintf(r.logw, "[psharp] "+format+"\n", args...)
}
