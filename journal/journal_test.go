package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// encodeRecord frames one record exactly as Log.Append does, so tests can
// assemble journal images byte by byte.
func encodeRecord(kind byte, payload []byte) []byte {
	var out []byte
	var frame [5]byte
	frame[0] = kind
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(payload)))
	out = append(out, frame[:]...)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint64(out, checksum(kind, payload))
}

func encodeHeader(version uint32) []byte {
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	return hdr[:]
}

// sampleRecords is a small varied record stream: empty payload, short
// payloads, and one spanning a few hundred bytes.
func sampleRecords() []Record {
	long := make([]byte, 300)
	for i := range long {
		long[i] = byte(i * 7)
	}
	return []Record{
		{Kind: 1, Payload: []byte(`{"meta":true}`)},
		{Kind: 2, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: 3, Payload: nil},
		{Kind: 4, Payload: long},
		{Kind: 5, Payload: []byte{0xff}},
	}
}

func encodeFile(version uint32, records []Record) []byte {
	data := encodeHeader(version)
	for _, r := range records {
		data = append(data, encodeRecord(r.Kind, r.Payload)...)
	}
	return data
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind {
			t.Fatalf("record %d: kind %d, want %d", i, got[i].Kind, want[i].Kind)
		}
		if string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d: payload %x, want %x", i, got[i].Payload, want[i].Payload)
		}
	}
}

func TestLogAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.journal")
	l, err := CreateLog(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, end, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, want)
	if fi, _ := os.Stat(path); fi.Size() != end {
		t.Fatalf("valid prefix ends at %d but file is %d bytes", end, fi.Size())
	}

	// Reopen for appending and add one more record.
	l2, got2, err := OpenLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got2, want)
	if err := l2.Append(9, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got3, _, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got3, append(want, Record{Kind: 9, Payload: []byte("tail")}))
}

func TestCreateLogRefusesExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.journal")
	l, err := CreateLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := CreateLog(path, 0); err == nil {
		t.Fatal("CreateLog over an existing journal must fail")
	}
}

// TestTornTailEveryPrefix is the core recovery property: for EVERY byte
// prefix of a valid journal — every possible torn-write point — recovery
// must succeed and yield exactly the records whose frames fit entirely in
// the prefix. No prefix may be classified as corruption.
func TestTornTailEveryPrefix(t *testing.T) {
	want := sampleRecords()
	full := encodeFile(Version, want)

	// recordEnds[i] = offset at which record i's frame ends.
	ends := make([]int, len(want))
	off := headerLen
	for i, r := range want {
		off += 5 + len(r.Payload) + 8
		ends[i] = off
	}

	for k := 0; k <= len(full); k++ {
		got, end, err := recover_("prefix", full[:k])
		if err != nil {
			t.Fatalf("prefix %d: unexpected error %v", k, err)
		}
		complete := 0
		for complete < len(ends) && ends[complete] <= k {
			complete++
		}
		sameRecords(t, got, want[:complete])
		wantEnd := int64(headerLen)
		if k < headerLen {
			wantEnd = 0
		}
		if complete > 0 {
			wantEnd = int64(ends[complete-1])
		}
		if end != wantEnd {
			t.Fatalf("prefix %d: valid end %d, want %d", k, end, wantEnd)
		}
	}
}

// TestOpenLogTruncatesTornTail writes a torn tail on disk and checks
// OpenLog both recovers the valid prefix and physically truncates the file
// so subsequent appends extend a clean journal.
func TestOpenLogTruncatesTornTail(t *testing.T) {
	want := sampleRecords()
	full := encodeFile(Version, want)
	path := filepath.Join(t.TempDir(), "torn.journal")
	// Cut the last record in half.
	cut := len(full) - (5+len(want[len(want)-1].Payload)+8)/2
	if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	l, got, err := OpenLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, want[:len(want)-1])
	if err := l.Append(7, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got2, append(want[:len(want)-1], Record{Kind: 7, Payload: []byte("after")}))
}

// TestOpenLogRewritesTornHeader covers a crash between create and the first
// header sync: a file shorter than the header restarts as a fresh journal.
func TestOpenLogRewritesTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdr.journal")
	if err := os.WriteFile(path, magic[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, err := OpenLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("torn header recovered %d records, want 0", len(got))
	}
	if err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got2, []Record{{Kind: 1, Payload: []byte("x")}})
}

func TestMidFileChecksumFlipFailsLoudly(t *testing.T) {
	want := sampleRecords()
	full := encodeFile(Version, want)
	// Flip one payload byte of the SECOND record: valid data follows, so
	// this must be loud corruption, never a silent truncation.
	off := headerLen + 5 + len(want[0].Payload) + 8 // start of record 1
	full[off+5+2] ^= 0x01                           // a payload byte of record 1

	_, _, err := recover_("flip", full)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
	if ce.Offset != int64(off) {
		t.Fatalf("corruption reported at offset %d, want %d", ce.Offset, off)
	}
}

func TestFinalRecordChecksumFlipIsTornTail(t *testing.T) {
	want := sampleRecords()
	full := encodeFile(Version, want)
	// Flip a byte of the LAST record's checksum: indistinguishable from a
	// torn append, so it truncates instead of failing.
	full[len(full)-1] ^= 0x80

	got, _, err := recover_("tail-flip", full)
	if err != nil {
		t.Fatalf("final-record flip must recover, got %v", err)
	}
	sameRecords(t, got, want[:len(want)-1])
}

func TestOversizedLengthFailsLoudly(t *testing.T) {
	data := encodeHeader(Version)
	data = append(data, 1)
	data = binary.LittleEndian.AppendUint32(data, MaxPayload+1)
	data = append(data, make([]byte, 64)...)

	_, _, err := recover_("huge", data)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError for oversized length", err)
	}
}

func TestUnknownVersionFailsLoudly(t *testing.T) {
	data := encodeFile(99, sampleRecords())
	_, _, err := recover_("v99", data)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Version != 99 {
		t.Fatalf("reported version %d, want 99", ve.Version)
	}
}

func TestNotAJournal(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("definitely not a journal file, much longer than the header"),
		[]byte("PX"), // shorter than the magic and not a prefix of it
		[]byte("{}"), // JSON masquerading
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	} {
		if _, _, err := recover_("alien", data); !errors.Is(err, ErrNotJournal) {
			t.Fatalf("%q: got %v, want ErrNotJournal", data, err)
		}
	}
}

func TestRewriteReplacesContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rw.journal")
	l, err := CreateLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Append(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := []Record{{Kind: 1, Payload: []byte("meta")}, {Kind: 2, Payload: []byte("kept")}}
	if err := l.Rewrite(want); err != nil {
		t.Fatal(err)
	}
	// The log must remain appendable after the rename dance.
	if err := l.Append(3, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, append(want, Record{Kind: 3, Payload: []byte("post")}))
	// No temp litter left behind.
	matches, _ := filepath.Glob(path + ".rewrite-*")
	if len(matches) != 0 {
		t.Fatalf("rewrite left temp files: %v", matches)
	}
}
