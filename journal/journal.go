// Package journal implements the crash-safe append-only campaign journal
// behind resumable exploration campaigns (psharp-test -journal/-resume).
//
// The package has two layers. The low-level Log is a generic append-only
// record file: a versioned binary header followed by checksummed records,
// recovered after a crash by truncating at the last valid record. The
// high-level Campaign (campaign.go) layers typed records on top of it —
// schedule fingerprints, per-worker strategy cursors, merged counters and
// telemetry checkpoints — plus a shard manifest so N processes can split
// one campaign.
//
// # File format
//
// A journal file is a 16-byte header followed by zero or more records:
//
//	header:  magic "PSHJRNL\x00" | version uint32 LE | reserved uint32 LE
//	record:  kind byte | length uint32 LE | payload | checksum uint64 LE
//
// The checksum is 64-bit FNV-1a over the record's kind byte, its length
// field bytes, and its payload, so neither a flipped payload byte nor a
// flipped length byte can go unnoticed. Payloads are capped at MaxPayload;
// a larger length field cannot come from a torn write of a legal record and
// is always treated as corruption.
//
// # Recovery semantics
//
// Append-only files fail in one benign way — the process died mid-append,
// leaving a truncated final record — and recovery must not confuse that
// with real corruption:
//
//   - A partial record at end-of-file (too few bytes, or a checksum
//     mismatch on the very last record) is a torn write: Open truncates the
//     file back to the last valid record and the campaign continues. At
//     most the un-flushed tail of work is re-executed, never lost state.
//   - A checksum mismatch with more data after it, an oversized length
//     field, or a bad magic/version header is real corruption: Open fails
//     loudly with a *CorruptError (or *VersionError) instead of silently
//     dropping interior records.
//
// # Durability
//
// Appends go through a buffered writer and are fsynced every
// Options.SyncEvery records (Sync and Close always flush). A lower cadence
// bounds how much exploration a power loss can cost; a higher cadence keeps
// the journal entirely off the exploration hot path. Compaction rewrites
// happen in a temp file that is fsynced and renamed over the journal, so a
// crash during compaction leaves either the old or the new file, never a
// hybrid.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Version is the journal file-format version this package reads and
// writes. Files with any other version are rejected loudly: silently
// reinterpreting an unknown layout could resurrect wrong campaign state.
const Version = 1

// MaxPayload caps a record payload at 64 MiB. Campaign records are a few
// KiB at most; a length field beyond the cap is proof of corruption, not a
// torn write, because torn writes only ever truncate legal records.
const MaxPayload = 1 << 26

const headerLen = 16

var magic = [8]byte{'P', 'S', 'H', 'J', 'R', 'N', 'L', 0}

// ErrNotJournal reports that a file does not start with the journal magic.
var ErrNotJournal = errors.New("journal: not a journal file (bad magic)")

// VersionError reports a journal written by an unknown format version.
type VersionError struct {
	Path    string
	Version uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("journal: %s: unsupported format version %d (this build reads version %d)", e.Path, e.Version, Version)
}

// CorruptError reports unrecoverable mid-file corruption: a record whose
// checksum or framing is wrong with valid data after it, which truncation
// would silently destroy.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Record is one recovered journal record.
type Record struct {
	Kind    byte
	Payload []byte
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// checksum is 64-bit FNV-1a over kind, the 4 length bytes, and payload.
func checksum(kind byte, payload []byte) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(kind)) * fnvPrime64
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(payload)))
	for _, b := range lenb {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	for _, b := range payload {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// Log is the low-level append-only record file. It is not safe for
// concurrent use; Campaign serializes access behind its own mutex.
type Log struct {
	path      string
	f         *os.File
	buf       []byte // pending appended bytes not yet written through
	syncEvery int    // fsync cadence in records; <= 0 means only on Sync/Close
	unsynced  int
	err       error // first write error; latched, later appends are no-ops
}

// CreateLog creates a fresh journal at path (failing if one already
// exists) and writes its header durably.
func CreateLog(path string, syncEvery int) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{path: path, f: f, syncEvery: syncEvery}, nil
}

// OpenLog recovers the journal at path and returns it positioned for
// appending, together with every valid record in file order. A torn tail
// is truncated away; mid-file corruption or an alien header fails loudly
// (see the package docs for the exact classification).
func OpenLog(path string, syncEvery int) (*Log, []Record, error) {
	records, validEnd, err := RecoverFile(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if validEnd < headerLen {
		// The header itself was torn (crash between create and first sync):
		// rewrite it and start over as an empty journal.
		var hdr [headerLen]byte
		copy(hdr[:], magic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], Version)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		validEnd = headerLen
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{path: path, f: f, syncEvery: syncEvery}, records, nil
}

// RecoverFile scans the journal at path read-only and returns its valid
// records plus the byte offset at which the valid prefix ends. It applies
// the package's recovery classification but modifies nothing, so peer
// shards of a live campaign can be read safely.
func RecoverFile(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return recover_(path, data)
}

func recover_(path string, data []byte) ([]Record, int64, error) {
	n := len(data)
	if n < len(magic) {
		// Even the magic is incomplete. An empty or near-empty file is a torn
		// header if what is there matches the magic prefix; anything else is
		// not a journal.
		if string(data) != string(magic[:n]) {
			return nil, 0, ErrNotJournal
		}
		return nil, 0, nil
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, 0, ErrNotJournal
	}
	if n < headerLen {
		return nil, 0, nil // torn header: magic ok, version missing
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, 0, &VersionError{Path: path, Version: v}
	}
	var records []Record
	off := int64(headerLen)
	for int(off) < n {
		rest := n - int(off)
		if rest < 5 {
			return records, off, nil // torn tail: framing incomplete
		}
		kind := data[off]
		plen := binary.LittleEndian.Uint32(data[off+1 : off+5])
		if plen > MaxPayload {
			return nil, 0, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("payload length %d exceeds cap %d", plen, MaxPayload)}
		}
		total := 5 + int64(plen) + 8
		if off+total > int64(n) {
			return records, off, nil // torn tail: record extends past EOF
		}
		payload := data[off+5 : off+5+int64(plen)]
		want := binary.LittleEndian.Uint64(data[off+5+int64(plen) : off+total])
		if checksum(kind, payload) != want {
			if off+total == int64(n) {
				// The final record's checksum is wrong and nothing follows it:
				// indistinguishable from a torn append, so treat it as one.
				return records, off, nil
			}
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "checksum mismatch"}
		}
		records = append(records, Record{Kind: kind, Payload: append([]byte(nil), payload...)})
		off += total
	}
	return records, off, nil
}

// Err returns the first write error, if any. After an error the log is
// poisoned: further appends are silently dropped so a campaign can finish
// in memory and report the journal failure once at the end.
func (l *Log) Err() error { return l.err }

// Path returns the journal's file path.
func (l *Log) Path() string { return l.path }

// Append appends one record. The write is buffered; durability follows the
// configured fsync cadence.
func (l *Log) Append(kind byte, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	if len(payload) > MaxPayload {
		l.err = fmt.Errorf("journal: record payload %d bytes exceeds cap %d", len(payload), MaxPayload)
		return l.err
	}
	var frame [5]byte
	frame[0] = kind
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(payload)))
	l.buf = append(l.buf, frame[:]...)
	l.buf = append(l.buf, payload...)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, checksum(kind, payload))
	l.unsynced++
	if l.syncEvery > 0 && l.unsynced >= l.syncEvery {
		return l.Sync()
	}
	// Keep the in-memory tail bounded even when syncing is rare.
	if len(l.buf) >= 1<<20 {
		return l.flush()
	}
	return nil
}

// flush writes buffered records to the file without fsyncing.
func (l *Log) flush() error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = err
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	if err := l.flush(); err != nil {
		return err
	}
	if l.unsynced == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	l.unsynced = 0
	return nil
}

// Close syncs and closes the journal.
func (l *Log) Close() error {
	syncErr := l.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Rewrite atomically replaces the journal's contents with records — the
// compaction primitive. It writes a sibling temp file, fsyncs it, renames
// it over the journal, and re-opens the log for appending; a crash at any
// point leaves either the complete old file or the complete new one.
func (l *Log) Rewrite(records []Record) error {
	if err := l.Sync(); err != nil {
		return err
	}
	dir, base := filepath.Split(l.path)
	tmp, err := os.CreateTemp(dir, base+".rewrite-*")
	if err != nil {
		l.err = err
		return err
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		l.err = err
		return err
	}
	var buf []byte
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	buf = append(buf, hdr[:]...)
	for _, r := range records {
		var frame [5]byte
		frame[0] = r.Kind
		binary.LittleEndian.PutUint32(frame[1:5], uint32(len(r.Payload)))
		buf = append(buf, frame[:]...)
		buf = append(buf, r.Payload...)
		buf = binary.LittleEndian.AppendUint64(buf, checksum(r.Kind, r.Payload))
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		l.err = err
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		l.err = err
		return err
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.err = err
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		l.err = err
		return err
	}
	old.Close()
	l.f = f
	l.unsynced = 0
	return nil
}
