package journal

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testMeta() Meta {
	return Meta{
		Benchmark: "FanIn", Strategy: "random", Seed: 42,
		Workers: 2, ShardIndex: 0, ShardCount: 1, MaxSteps: 100,
	}
}

func TestCampaignCreateResumeRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := Create(dir, testMeta(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Resumed() {
		t.Fatal("fresh campaign reports Resumed")
	}
	c.Advance(0, 10, nil, []uint64{101, 102, 103})
	c.Advance(1, 7, []byte("dfs-blob"), []uint64{201})
	c.Advance(0, 20, nil, []uint64{104}) // supersedes worker 0's cursor
	ct := Counters{Iterations: 37, BuggyIterations: 4, MaxSchedulingPoints: 19, ElapsedMicros: 1500}
	c.SaveCounters(ct)
	c.Checkpoint(Checkpoint{ElapsedMicros: 1500, Iterations: 37, DistinctSchedules: 5}, true)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Resumed() {
		t.Fatal("resumed campaign reports fresh")
	}
	fps := map[uint64]bool{}
	for _, fp := range r.Fingerprints() {
		fps[fp] = true
	}
	for _, want := range []uint64{101, 102, 103, 104, 201} {
		if !fps[want] {
			t.Fatalf("fingerprint %d lost across resume", want)
		}
	}
	if len(fps) != 5 {
		t.Fatalf("recovered %d fingerprints, want 5", len(fps))
	}
	if done, blob, ok := r.Cursor(0); !ok || done != 20 || blob != nil {
		t.Fatalf("worker 0 cursor = (%d, %q, %t), want (20, nil, true)", done, blob, ok)
	}
	if done, blob, ok := r.Cursor(1); !ok || done != 7 || string(blob) != "dfs-blob" {
		t.Fatalf("worker 1 cursor = (%d, %q, %t), want (7, dfs-blob, true)", done, blob, ok)
	}
	if _, _, ok := r.Cursor(2); ok {
		t.Fatal("phantom cursor for worker 2")
	}
	if got := r.Counters(); got != ct {
		t.Fatalf("counters = %+v, want %+v", got, ct)
	}
	cps := r.Checkpoints()
	if len(cps) != 1 || cps[0].Iterations != 37 {
		t.Fatalf("checkpoints = %+v, want one with Iterations 37", cps)
	}
}

func TestCampaignCreateRefusesExistingShard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := Create(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	_, err = Create(dir, testMeta(), Options{})
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("re-Create must point at -resume, got %v", err)
	}
}

func TestResumeWithoutManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "empty")
	if _, err := Resume(dir, testMeta(), Options{}); err == nil || !strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("got %v, want 'nothing to resume'", err)
	}
}

func TestResumeRejectsMismatchedMeta(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := Create(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	for _, tc := range []struct {
		name   string
		mutate func(*Meta)
	}{
		{"seed", func(m *Meta) { m.Seed = 43 }},
		{"strategy", func(m *Meta) { m.Strategy = "pct" }},
		{"workers", func(m *Meta) { m.Workers = 4 }},
		{"max steps", func(m *Meta) { m.MaxSteps = 999 }},
		{"fault budget", func(m *Meta) { m.FaultBudget = 2 }},
		{"extra", func(m *Meta) { m.Extra = "monitors=true" }},
	} {
		m := testMeta()
		tc.mutate(&m)
		if _, err := Resume(dir, m, Options{}); err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Fatalf("%s change: got %v, want 'different campaign' rejection", tc.name, err)
		}
	}
	// The iteration budget is deliberately NOT part of the identity, so no
	// mismatch case for it exists: budget-split resumes are the feature.
}

// TestResumeGrowsBudget exercises the exact resume contract psharp-test
// relies on: the same Meta with more iterations to run is accepted.
func TestResumeGrowsBudget(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := Create(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(0, 50, nil, []uint64{1, 2, 3})
	c.Close()
	r, err := Resume(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if done, _, _ := r.Cursor(0); done != 50 {
		t.Fatalf("cursor = %d, want 50", done)
	}
}

func TestCompactionPreservesState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	// Aggressive thresholds so cursor supersession triggers compaction.
	c, err := Create(dir, testMeta(), Options{SyncEvery: -1, CompactMinRecords: 16, CompactRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var wantFPs []uint64
	for i := 1; i <= 200; i++ {
		fp := uint64(i) * 0x9e3779b97f4a7c15
		wantFPs = append(wantFPs, fp)
		c.Advance(i%2, i, nil, []uint64{fp})
	}
	c.SaveCounters(Counters{Iterations: 200})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// 400+ appended records, two live cursors: compaction must have fired.
	records, _, err := RecoverFile(filepath.Join(dir, ShardFileName(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) > 100 {
		t.Fatalf("file holds %d records after 400+ appends; compaction never fired", len(records))
	}

	r, err := Resume(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fps := map[uint64]bool{}
	for _, fp := range r.Fingerprints() {
		fps[fp] = true
	}
	for _, fp := range wantFPs {
		if !fps[fp] {
			t.Fatalf("fingerprint %x lost in compaction", fp)
		}
	}
	if done, _, _ := r.Cursor(0); done != 200 {
		t.Fatalf("worker 0 cursor = %d, want 200", done)
	}
	if done, _, _ := r.Cursor(1); done != 199 {
		t.Fatalf("worker 1 cursor = %d, want 199", done)
	}
	if r.Counters().Iterations != 200 {
		t.Fatalf("counters lost in compaction: %+v", r.Counters())
	}
}

func TestCheckpointRateLimit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := Create(dir, testMeta(), Options{CheckpointEvery: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for us := int64(0); us < 5_000_000; us += 100_000 { // every 100ms for 5s
		c.Checkpoint(Checkpoint{ElapsedMicros: us}, false)
	}
	c.Checkpoint(Checkpoint{ElapsedMicros: 5_000_001}, true) // forced final
	got := len(c.Checkpoints())
	if got < 5 || got > 7 {
		t.Fatalf("%d checkpoints from 50 offers over 5s at 1/s, want ~6", got)
	}
}

func TestShardPeersAndReadState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	meta0 := testMeta()
	meta0.ShardCount = 2
	c0, err := Create(dir, meta0, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c0.Advance(0, 5, nil, []uint64{1, 2, 3})
	c0.SaveCounters(Counters{Iterations: 5, BuggyIterations: 1, MaxSchedulingPoints: 9})
	if err := c0.Close(); err != nil {
		t.Fatal(err)
	}

	// Shard 1 starts later and must see shard 0's fingerprints read-only.
	meta1 := meta0
	meta1.ShardIndex = 1
	c1, err := Create(dir, meta1, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fps := map[uint64]bool{}
	for _, fp := range c1.Fingerprints() {
		fps[fp] = true
	}
	if !fps[1] || !fps[2] || !fps[3] {
		t.Fatalf("shard 1 did not preload shard 0's fingerprints: %v", c1.Fingerprints())
	}
	c1.Advance(2, 4, nil, []uint64{3, 4}) // fp 3 overlaps shard 0
	c1.SaveCounters(Counters{Iterations: 4, MaxSchedulingPoints: 12})
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := ReadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.ShardsPresent != 2 {
		t.Fatalf("shards = %d/%d, want 2/2", st.ShardsPresent, st.Shards)
	}
	if st.DistinctSchedules != 4 { // {1,2,3,4}: the union, not the sum
		t.Fatalf("merged distinct = %d, want 4", st.DistinctSchedules)
	}
	if st.Counters.Iterations != 9 || st.Counters.BuggyIterations != 1 {
		t.Fatalf("summed counters = %+v", st.Counters)
	}
	if st.Counters.MaxSchedulingPoints != 12 { // max across shards, not sum
		t.Fatalf("max SP = %d, want 12", st.Counters.MaxSchedulingPoints)
	}
}

func TestShardCountMismatchRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	meta := testMeta()
	meta.ShardCount = 2
	c, err := Create(dir, meta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	solo := testMeta() // ShardCount 1
	if _, err := Create(dir, solo, Options{}); err == nil {
		t.Fatal("shard-count change must be rejected by the manifest")
	}
}

// TestResumeAfterKillAtRandomOffset simulates SIGKILL at arbitrary byte
// positions: any prefix of a valid shard file must resume cleanly, with the
// recovered fingerprints a subset of what was journaled and the cursor at
// some previously journaled position — never ahead of it.
func TestResumeAfterKillAtRandomOffset(t *testing.T) {
	src := filepath.Join(t.TempDir(), "camp")
	c, err := Create(src, testMeta(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	journaled := map[uint64]bool{}
	for i := 1; i <= 60; i++ {
		fp := uint64(i) * 0x2545f4914f6cdd1d
		journaled[fp] = true
		c.Advance(i%2, i, nil, []uint64{fp})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	shard := ShardFileName(0, 1)
	full, err := os.ReadFile(filepath.Join(src, shard))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(src, ManifestName))
	if err != nil {
		t.Fatal(err)
	}

	// The meta record must survive the cut for the shard to be resumable at
	// all (losing it means the journal restarts empty, a case the engine
	// handles by recreating — not what this test probes).
	metaLen := int(binary.LittleEndian.Uint32(full[headerLen+1 : headerLen+5]))
	metaEnd := headerLen + 5 + metaLen + 8

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		cut := metaEnd + rng.Intn(len(full)-metaEnd)
		dir := filepath.Join(t.TempDir(), "killed")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, shard), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		r, err := Resume(dir, testMeta(), Options{})
		if err != nil {
			t.Fatalf("cut at %d: resume failed: %v", cut, err)
		}
		maxCursor := 0
		for _, w := range []int{0, 1} {
			if done, _, ok := r.Cursor(w); ok && done > maxCursor {
				maxCursor = done
			}
		}
		for _, fp := range r.Fingerprints() {
			if !journaled[fp] {
				t.Fatalf("cut at %d: phantom fingerprint %x", cut, fp)
			}
		}
		// The flush ordering invariant: fingerprints land before the cursor
		// advance, so the cursor can never claim iterations whose
		// fingerprints were lost. Cursor trails or matches the fingerprint
		// count (each iteration journaled exactly one fingerprint).
		if maxCursor > len(r.Fingerprints()) {
			t.Fatalf("cut at %d: cursor %d ahead of %d recovered fingerprints — resume would skip unjournaled work",
				cut, maxCursor, len(r.Fingerprints()))
		}
		r.Close()
	}
}

// TestResumeTornAtBirth covers the extreme torn tail: the process died
// before its first flush, so the shard's journal on disk is empty, a
// partial header, a bare header, or a header plus a torn meta record —
// nothing durable ever landed. Resume must re-seed the shard as fresh
// (the manifest still pins the campaign identity) rather than refuse the
// whole campaign, and the re-seeded shard must be fully usable.
func TestResumeTornAtBirth(t *testing.T) {
	src := filepath.Join(t.TempDir(), "camp")
	c, err := Create(src, testMeta(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(0, 1, nil, []uint64{0xfeed})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	shard := ShardFileName(0, 1)
	full, err := os.ReadFile(filepath.Join(src, shard))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(src, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	metaLen := int(binary.LittleEndian.Uint32(full[headerLen+1 : headerLen+5]))
	metaEnd := headerLen + 5 + metaLen + 8

	for _, cut := range []int{0, 7, headerLen, headerLen + 3, metaEnd - 1} {
		dir := filepath.Join(t.TempDir(), "torn")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, shard), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		r, err := Resume(dir, testMeta(), Options{SyncEvery: 1})
		if err != nil {
			t.Fatalf("cut at %d: resume refused a torn-at-birth shard: %v", cut, err)
		}
		if r.Resumed() {
			t.Fatalf("cut at %d: nothing was recovered, yet Resumed() = true", cut)
		}
		if n := len(r.Fingerprints()); n != 0 {
			t.Fatalf("cut at %d: %d phantom fingerprints on a torn-at-birth shard", cut, n)
		}
		if _, _, ok := r.Cursor(0); ok {
			t.Fatalf("cut at %d: phantom cursor on a torn-at-birth shard", cut)
		}

		// The re-seeded shard works: journal some state and resume again.
		r.Advance(0, 2, nil, []uint64{0xbeef, 0xcafe})
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Resume(dir, testMeta(), Options{})
		if err != nil {
			t.Fatalf("cut at %d: second resume: %v", cut, err)
		}
		if !r2.Resumed() {
			t.Fatalf("cut at %d: second resume not marked resumed", cut)
		}
		if n := len(r2.Fingerprints()); n != 2 {
			t.Fatalf("cut at %d: recovered %d fingerprints after re-seed, want 2", cut, n)
		}
		r2.Close()
	}
}
