package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The golden fixtures under testdata/ pin the recovery classification to
// files whose bytes are committed, so a framing or checksum change that
// silently alters how old journals are read fails here even if the
// round-trip tests (which use the new code on both sides) still pass.
//
//	torn-tail.journal     valid prefix + half a record  → truncate and continue
//	bad-checksum.journal  mid-file bit flip, data after → *CorruptError
//	bad-version.journal   header version 7              → *VersionError
//
// Regenerate with: JOURNAL_WRITE_GOLDENS=1 go test ./journal -run TestWriteGoldens

// goldenRecords is the record stream the corrupt fixtures are derived from:
// a plausible miniature campaign journal (meta, fingerprints, cursor).
func goldenRecords() []Record {
	return []Record{
		{Kind: recMeta, Payload: []byte(`{"strategy":"random","seed":42,"workers":2,"shard_index":0,"shard_count":1}`)},
		{Kind: recFingerprints, Payload: []byte{
			0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88,
			0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00,
		}},
		{Kind: recCursor, Payload: []byte{0x00, 0x80, 0x01}}, // worker 0, 128 completed
	}
}

func goldenImages() map[string][]byte {
	recs := goldenRecords()
	torn := encodeFile(Version, recs)
	extra := encodeRecord(recFingerprints, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	torn = append(torn, extra[:len(extra)/2]...) // half an appended record

	bad := encodeFile(Version, recs)
	fpOff := headerLen + 5 + len(recs[0].Payload) + 8 // start of the fingerprint record
	bad[fpOff+5+3] ^= 0x40                            // flip a payload bit; a valid cursor record follows

	return map[string][]byte{
		"torn-tail.journal":    torn,
		"bad-checksum.journal": bad,
		"bad-version.journal":  encodeFile(7, recs),
	}
}

func TestWriteGoldens(t *testing.T) {
	if os.Getenv("JOURNAL_WRITE_GOLDENS") == "" {
		t.Skip("set JOURNAL_WRITE_GOLDENS=1 to regenerate testdata fixtures")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range goldenImages() {
		if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenFixturesMatchGenerator guards against the committed fixtures
// drifting from the generator that documents them.
func TestGoldenFixturesMatchGenerator(t *testing.T) {
	for name, want := range goldenImages() {
		got, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale; regenerate with JOURNAL_WRITE_GOLDENS=1", name)
		}
	}
}

func TestGoldenTornTailRecovers(t *testing.T) {
	got, _, err := RecoverFile(filepath.Join("testdata", "torn-tail.journal"))
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	sameRecords(t, got, goldenRecords())

	// OpenLog must be able to adopt it for appending; work on a copy so the
	// fixture itself is never truncated.
	data, _ := os.ReadFile(filepath.Join("testdata", "torn-tail.journal"))
	path := filepath.Join(t.TempDir(), "torn-tail.journal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got2, err := OpenLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got2, goldenRecords())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenBadChecksumRejected(t *testing.T) {
	_, _, err := RecoverFile(filepath.Join("testdata", "bad-checksum.journal"))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption must fail loudly, got %v", err)
	}
}

func TestGoldenBadVersionRejected(t *testing.T) {
	_, _, err := RecoverFile(filepath.Join("testdata", "bad-version.journal"))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("unknown version must fail loudly, got %v", err)
	}
	if ve.Version != 7 {
		t.Fatalf("reported version %d, want 7", ve.Version)
	}
}
