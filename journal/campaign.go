package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record kinds of the campaign layer.
const (
	recMeta         byte = 1 // JSON Meta: what campaign this shard belongs to
	recFingerprints byte = 2 // batch of 8-byte LE schedule fingerprints
	recCursor       byte = 3 // per-worker strategy cursor (supersedes prior)
	recCounters     byte = 4 // campaign-cumulative counters (supersedes prior)
	recCheckpoint   byte = 5 // telemetry growth-curve checkpoint
)

// Meta identifies a campaign: a resumed or sharded run must present the
// same Meta (up to its own ShardIndex) or be rejected, because cursors and
// fingerprints only make sense against the exact strategy stream, seed,
// worker layout and fault plan that produced them. The iteration budget is
// deliberately absent: growing it on resume is the whole point of
// budget-split campaigns, and the worker→iteration mapping is
// budget-independent.
type Meta struct {
	Benchmark string `json:"benchmark,omitempty"`
	Strategy  string `json:"strategy"`
	Seed      uint64 `json:"seed"`
	// Workers is the per-process worker count; the campaign's global worker
	// count is Workers × ShardCount.
	Workers    int `json:"workers"`
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	MaxSteps   int `json:"max_steps,omitempty"`
	// FaultBudget/FaultHorizon pin the fault-injection plan; a cursor from a
	// faulted stream is meaningless without it.
	FaultBudget  int `json:"fault_budget,omitempty"`
	FaultHorizon int `json:"fault_horizon,omitempty"`
	// Extra is a free-form fingerprint of any further configuration the
	// caller wants validated across resumes (psharp-test packs monitor and
	// liveness flags here).
	Extra string `json:"extra,omitempty"`
}

// normalized is the shard-independent view used for manifest comparison.
func (m Meta) normalized() Meta {
	m.ShardIndex = 0
	return m
}

// mismatch describes the first way other differs from m (shard-independent
// fields only), or returns "" when they are compatible.
func (m Meta) mismatch(other Meta) string {
	a, b := m.normalized(), other.normalized()
	switch {
	case a.Benchmark != b.Benchmark:
		return fmt.Sprintf("benchmark %q vs %q", b.Benchmark, a.Benchmark)
	case a.Strategy != b.Strategy:
		return fmt.Sprintf("strategy %q vs %q", b.Strategy, a.Strategy)
	case a.Seed != b.Seed:
		return fmt.Sprintf("seed %d vs %d", b.Seed, a.Seed)
	case a.Workers != b.Workers:
		return fmt.Sprintf("workers %d vs %d", b.Workers, a.Workers)
	case a.ShardCount != b.ShardCount:
		return fmt.Sprintf("shard count %d vs %d", b.ShardCount, a.ShardCount)
	case a.MaxSteps != b.MaxSteps:
		return fmt.Sprintf("max steps %d vs %d", b.MaxSteps, a.MaxSteps)
	case a.FaultBudget != b.FaultBudget:
		return fmt.Sprintf("fault budget %d vs %d", b.FaultBudget, a.FaultBudget)
	case a.FaultHorizon != b.FaultHorizon:
		return fmt.Sprintf("fault horizon %d vs %d", b.FaultHorizon, a.FaultHorizon)
	case a.Extra != b.Extra:
		return fmt.Sprintf("config %q vs %q", b.Extra, a.Extra)
	}
	return ""
}

// Counters is the campaign-cumulative counter record: everything a resumed
// run must merge monotonically into its Report.
type Counters struct {
	Iterations            int64
	BuggyIterations       int64
	BoundReached          int64
	TotalSchedulingPoints int64
	MaxSchedulingPoints   int64
	MaxMachines           int64
	Crashes               int64
	Restarts              int64
	Drops                 int64
	Duplicates            int64
	Reorders              int64
	ElapsedMicros         int64
}

// Checkpoint is one telemetry growth-curve point, durable so the coverage
// growth curve of a resumed campaign spans process lifetimes.
type Checkpoint struct {
	ElapsedMicros      int64
	Iterations         int64
	DistinctSchedules  int64
	CoveredTransitions int64
}

// Options tunes a campaign journal.
type Options struct {
	// SyncEvery fsyncs the shard file every N appended records. 0 selects
	// DefaultSyncEvery; negative syncs only at checkpoints and Close (the
	// fastest and least durable setting — a crash can lose everything since
	// the last checkpoint, but never corrupt the journal).
	SyncEvery int
	// CompactRatio triggers recompaction when dead (superseded) records
	// exceed this fraction of the file's records; 0 selects 0.5.
	CompactRatio float64
	// CompactMinRecords suppresses compaction below this record count so
	// small journals never pay a rewrite; 0 selects 512.
	CompactMinRecords int
	// CheckpointEvery rate-limits telemetry checkpoints; 0 selects 1s.
	CheckpointEvery time.Duration
}

// DefaultSyncEvery is the default fsync cadence in records: frequent
// enough that a SIGKILL loses at most a few flush batches, rare enough
// that the fsync cost never shows up against schedule execution.
const DefaultSyncEvery = 64

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.CompactRatio == 0 {
		o.CompactRatio = 0.5
	}
	if o.CompactMinRecords == 0 {
		o.CompactMinRecords = 512
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = time.Second
	}
	return o
}

// ManifestName is the campaign manifest file inside a journal directory.
const ManifestName = "MANIFEST.json"

type manifestFile struct {
	Format int  `json:"format"`
	Shards int  `json:"shards"`
	Meta   Meta `json:"meta"`
}

// ShardFileName is the journal file name for shard index of count.
func ShardFileName(index, count int) string {
	return fmt.Sprintf("shard-%03d-of-%03d.journal", index, count)
}

type cursorState struct {
	completed int
	blob      []byte
}

// Campaign is one process's handle on a campaign journal directory: it
// appends this shard's records and carries the recovered state (its own
// plus the union of peer shards' fingerprints) for the engine to preload.
// All methods are safe for concurrent use by exploration workers.
type Campaign struct {
	log  *Log
	dir  string
	meta Meta
	opts Options

	mu          sync.Mutex
	own         map[uint64]struct{} // fingerprints journaled in this shard's file
	preload     []uint64            // recovered fingerprints: own ∪ peers
	cursors     map[int]cursorState
	counters    Counters
	hasCounters bool
	checkpoints []Checkpoint
	lastCkpt    int64 // ElapsedMicros of the newest checkpoint
	total       int   // records in the shard file
	dead        int   // superseded records among them
	resumed     bool
	err         error
	buf         []byte // reusable payload encoding buffer
}

// Create starts a fresh campaign shard in dir, creating the directory and
// manifest as needed. It fails if this shard already has a journal (use
// Resume) or if dir's manifest belongs to a different campaign.
func Create(dir string, meta Meta, opts Options) (*Campaign, error) {
	return open(dir, meta, opts, false)
}

// Resume reopens a campaign shard, recovering all durable state: the
// fingerprint set (this shard's and every peer shard's), per-worker
// cursors, counters and checkpoints. A shard that never ran before is
// created fresh — whether its journal is missing entirely or is a bare
// header because the process died before its first flush — so a resumed
// campaign can grow shards that crashed before their first durable write.
// Recovery truncates a torn tail silently and rejects mid-file corruption
// loudly.
func Resume(dir string, meta Meta, opts Options) (*Campaign, error) {
	return open(dir, meta, opts, true)
}

func open(dir string, meta Meta, opts Options, resume bool) (*Campaign, error) {
	opts = opts.withDefaults()
	if meta.ShardCount <= 0 {
		meta.ShardCount = 1
	}
	if meta.ShardIndex < 0 || meta.ShardIndex >= meta.ShardCount {
		return nil, fmt.Errorf("journal: shard index %d out of range [0,%d)", meta.ShardIndex, meta.ShardCount)
	}
	if meta.Workers <= 0 {
		return nil, errors.New("journal: Meta.Workers must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := ensureManifest(dir, meta, resume); err != nil {
		return nil, err
	}
	c := &Campaign{
		dir:     dir,
		meta:    meta,
		opts:    opts,
		own:     make(map[uint64]struct{}),
		cursors: make(map[int]cursorState),
	}
	path := filepath.Join(dir, ShardFileName(meta.ShardIndex, meta.ShardCount))
	_, statErr := os.Stat(path)
	switch {
	case statErr == nil && !resume:
		return nil, fmt.Errorf("journal: %s already has a journal for shard %d/%d; resume the campaign or choose a fresh directory",
			dir, meta.ShardIndex, meta.ShardCount)
	case statErr == nil:
		log, records, err := OpenLog(path, opts.SyncEvery)
		if err != nil {
			return nil, err
		}
		if len(records) == 0 {
			// The process died before its first flush: recovery truncated
			// the torn meta record and left a bare header. Nothing durable
			// ever landed, so re-seed the shard as if created fresh rather
			// than refusing to resume it.
			if err := seedMeta(log, meta); err != nil {
				log.Close()
				return nil, err
			}
			c.log = log
			c.total = 1
			break
		}
		if err := c.replay(path, records); err != nil {
			log.Close()
			return nil, err
		}
		c.log = log
		c.resumed = true
	default:
		log, err := CreateLog(path, opts.SyncEvery)
		if err != nil {
			return nil, err
		}
		if err := seedMeta(log, meta); err != nil {
			log.Close()
			return nil, err
		}
		c.log = log
		c.total = 1
	}
	if err := c.loadPeers(); err != nil {
		c.log.Close()
		return nil, err
	}
	return c, nil
}

// seedMeta appends the campaign identity as the journal's first record and
// syncs it through immediately, regardless of the fsync cadence: until the
// meta record is durable the shard cannot be resumed as anything but
// empty, so the one extra fsync per campaign buys away almost the whole
// torn-at-birth window.
func seedMeta(log *Log, meta Meta) error {
	mp, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := log.Append(recMeta, mp); err != nil {
		return err
	}
	return log.Sync()
}

// ensureManifest writes the campaign manifest atomically on first contact
// and validates it on every later one.
func ensureManifest(dir string, meta Meta, resume bool) error {
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var mf manifestFile
		if err := json.Unmarshal(data, &mf); err != nil {
			return fmt.Errorf("journal: %s: %w", path, err)
		}
		if mf.Format != Version {
			return &VersionError{Path: path, Version: uint32(mf.Format)}
		}
		if mf.Shards != meta.ShardCount {
			return fmt.Errorf("journal: %s records %d shard(s), run asked for %d", path, mf.Shards, meta.ShardCount)
		}
		if diff := mf.Meta.mismatch(meta); diff != "" {
			return fmt.Errorf("journal: %s belongs to a different campaign: %s", path, diff)
		}
		return nil
	case os.IsNotExist(err):
		if resume {
			return fmt.Errorf("journal: %s has no campaign manifest; nothing to resume", dir)
		}
		mf := manifestFile{Format: Version, Shards: meta.ShardCount, Meta: meta.normalized()}
		data, err := json.MarshalIndent(mf, "", "  ")
		if err != nil {
			return err
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	default:
		return err
	}
}

// replay folds a recovered record stream into campaign state.
func (c *Campaign) replay(path string, records []Record) error {
	if len(records) == 0 || records[0].Kind != recMeta {
		return &CorruptError{Path: path, Offset: headerLen, Reason: "journal does not begin with a campaign meta record"}
	}
	var fileMeta Meta
	if err := json.Unmarshal(records[0].Payload, &fileMeta); err != nil {
		return &CorruptError{Path: path, Offset: headerLen, Reason: "undecodable campaign meta: " + err.Error()}
	}
	if fileMeta.ShardIndex != c.meta.ShardIndex {
		return fmt.Errorf("journal: %s holds shard %d, expected shard %d", path, fileMeta.ShardIndex, c.meta.ShardIndex)
	}
	if diff := c.meta.mismatch(fileMeta); diff != "" {
		return fmt.Errorf("journal: %s belongs to a different campaign: %s", path, diff)
	}
	for _, r := range records[1:] {
		switch r.Kind {
		case recFingerprints:
			if len(r.Payload)%8 != 0 {
				return &CorruptError{Path: path, Reason: "fingerprint batch not a multiple of 8 bytes"}
			}
			for i := 0; i+8 <= len(r.Payload); i += 8 {
				c.own[binary.LittleEndian.Uint64(r.Payload[i:])] = struct{}{}
			}
		case recCursor:
			worker, completed, blob, err := decodeCursor(r.Payload)
			if err != nil {
				return &CorruptError{Path: path, Reason: "undecodable cursor: " + err.Error()}
			}
			if _, had := c.cursors[worker]; had {
				c.dead++
			}
			c.cursors[worker] = cursorState{completed: completed, blob: blob}
		case recCounters:
			ct, err := decodeCounters(r.Payload)
			if err != nil {
				return &CorruptError{Path: path, Reason: "undecodable counters: " + err.Error()}
			}
			if c.hasCounters {
				c.dead++
			}
			c.counters, c.hasCounters = ct, true
		case recCheckpoint:
			cp, err := decodeCheckpoint(r.Payload)
			if err != nil {
				return &CorruptError{Path: path, Reason: "undecodable checkpoint: " + err.Error()}
			}
			c.checkpoints = append(c.checkpoints, cp)
			c.lastCkpt = cp.ElapsedMicros
		default:
			// Unknown kinds under a known version would mean a newer writer
			// sharing our version number; that must not pass silently.
			return &CorruptError{Path: path, Reason: fmt.Sprintf("unknown record kind %d", r.Kind)}
		}
	}
	c.total = len(records)
	return nil
}

// loadPeers unions the other shards' journaled fingerprints into the
// preload set. Peers are read with the same recovery rules but never
// modified — they may belong to live processes.
func (c *Campaign) loadPeers() error {
	seen := make(map[uint64]struct{}, len(c.own))
	for fp := range c.own {
		seen[fp] = struct{}{}
		c.preload = append(c.preload, fp)
	}
	for shard := 0; shard < c.meta.ShardCount; shard++ {
		if shard == c.meta.ShardIndex {
			continue
		}
		path := filepath.Join(c.dir, ShardFileName(shard, c.meta.ShardCount))
		records, _, err := RecoverFile(path)
		if os.IsNotExist(err) {
			continue // the peer has not started yet
		}
		if err != nil {
			return err
		}
		for _, r := range records {
			if r.Kind != recFingerprints {
				continue
			}
			for i := 0; i+8 <= len(r.Payload); i += 8 {
				fp := binary.LittleEndian.Uint64(r.Payload[i:])
				if _, dup := seen[fp]; !dup {
					seen[fp] = struct{}{}
					c.preload = append(c.preload, fp)
				}
			}
		}
	}
	return nil
}

// Resumed reports whether this shard recovered prior state.
func (c *Campaign) Resumed() bool { return c.resumed }

// Meta returns the campaign identity this handle was opened with.
func (c *Campaign) Meta() Meta { return c.meta }

// Dir returns the journal directory.
func (c *Campaign) Dir() string { return c.dir }

// Fingerprints returns every fingerprint recovered at open time — this
// shard's union every peer shard's — for preloading the engine's
// distinct-schedule set. The slice is shared; do not mutate it.
func (c *Campaign) Fingerprints() []uint64 { return c.preload }

// Cursor returns worker's recovered cursor: how many local iterations it
// had completed and its strategy's opaque cursor blob, if any.
func (c *Campaign) Cursor(worker int) (completed int, blob []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.cursors[worker]
	return cs.completed, cs.blob, ok
}

// Counters returns the newest recovered counter record (zero if none),
// i.e. the campaign-cumulative totals as of the last completed run.
func (c *Campaign) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Checkpoints returns the recovered telemetry checkpoints in time order.
func (c *Campaign) Checkpoints() []Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Checkpoint(nil), c.checkpoints...)
}

// Err returns the first append/IO error. The journal latches errors and
// turns later appends into no-ops, so a sick disk degrades a campaign to
// an unjournaled run instead of crashing it; callers check Err once at the
// end.
func (c *Campaign) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return c.log.Err()
}

// Advance journals one worker's progress: a batch of newly-distinct
// fingerprints followed by the worker's cursor. The fingerprints land
// before the cursor, so a torn tail can only lose the cursor advance —
// re-executing those iterations on resume is safe (the fingerprint set
// deduplicates) whereas skipping unjournaled ones would not be.
func (c *Campaign) Advance(worker, completed int, cursor []byte, fps []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed() {
		return
	}
	if len(fps) > 0 {
		c.buf = c.buf[:0]
		for _, fp := range fps {
			c.buf = binary.LittleEndian.AppendUint64(c.buf, fp)
			c.own[fp] = struct{}{}
		}
		if c.log.Append(recFingerprints, c.buf) != nil {
			return
		}
		c.total++
	}
	c.buf = c.buf[:0]
	c.buf = binary.AppendUvarint(c.buf, uint64(worker))
	c.buf = binary.AppendUvarint(c.buf, uint64(completed))
	c.buf = append(c.buf, cursor...)
	if c.log.Append(recCursor, c.buf) != nil {
		return
	}
	c.total++
	if _, had := c.cursors[worker]; had {
		c.dead++
	}
	c.cursors[worker] = cursorState{completed: completed, blob: append([]byte(nil), cursor...)}
	c.maybeCompactLocked()
}

// SaveCounters journals the campaign-cumulative counters, superseding any
// prior counter record.
func (c *Campaign) SaveCounters(ct Counters) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed() {
		return
	}
	c.buf = encodeCounters(c.buf[:0], ct)
	if c.log.Append(recCounters, c.buf) != nil {
		return
	}
	c.total++
	if c.hasCounters {
		c.dead++
	}
	c.counters, c.hasCounters = ct, true
	c.maybeCompactLocked()
}

// Checkpoint journals a telemetry growth-curve point, rate-limited to one
// per Options.CheckpointEvery unless force is set (the final checkpoint of
// a run always lands). Checkpoints are also sync barriers: even under a
// negative SyncEvery the journal is durable up to the last checkpoint.
func (c *Campaign) Checkpoint(cp Checkpoint, force bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed() {
		return
	}
	if !force && cp.ElapsedMicros-c.lastCkpt < c.opts.CheckpointEvery.Microseconds() {
		return
	}
	c.buf = c.buf[:0]
	c.buf = binary.AppendUvarint(c.buf, uint64(cp.ElapsedMicros))
	c.buf = binary.AppendUvarint(c.buf, uint64(cp.Iterations))
	c.buf = binary.AppendUvarint(c.buf, uint64(cp.DistinctSchedules))
	c.buf = binary.AppendUvarint(c.buf, uint64(cp.CoveredTransitions))
	if c.log.Append(recCheckpoint, c.buf) != nil {
		return
	}
	c.total++
	c.checkpoints = append(c.checkpoints, cp)
	c.lastCkpt = cp.ElapsedMicros
	c.log.Sync()
}

// failed reports (under c.mu) whether the journal has latched an error.
func (c *Campaign) failed() bool {
	return c.err != nil || c.log.Err() != nil
}

// maxCheckpointsKept bounds how many checkpoints a compaction rewrite
// preserves; older points are evenly thinned, mirroring obs.Curve.
const maxCheckpointsKept = 256

// maybeCompactLocked rewrites the shard file without superseded records
// once the dead-record ratio crosses the configured threshold.
func (c *Campaign) maybeCompactLocked() {
	if c.total < c.opts.CompactMinRecords || float64(c.dead) <= c.opts.CompactRatio*float64(c.total) {
		return
	}
	c.compactLocked()
}

// Compact forces a compaction rewrite regardless of the dead-record ratio.
func (c *Campaign) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed() {
		return c.errLocked()
	}
	c.compactLocked()
	return c.errLocked()
}

func (c *Campaign) errLocked() error {
	if c.err != nil {
		return c.err
	}
	return c.log.Err()
}

func (c *Campaign) compactLocked() {
	mp, err := json.Marshal(c.meta)
	if err != nil {
		c.err = err
		return
	}
	records := []Record{{Kind: recMeta, Payload: mp}}
	// One sorted batch per 64k fingerprints: deterministic output, bounded
	// payloads.
	fps := make([]uint64, 0, len(c.own))
	for fp := range c.own {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	const batch = 1 << 16
	for i := 0; i < len(fps); i += batch {
		end := min(i+batch, len(fps))
		payload := make([]byte, 0, (end-i)*8)
		for _, fp := range fps[i:end] {
			payload = binary.LittleEndian.AppendUint64(payload, fp)
		}
		records = append(records, Record{Kind: recFingerprints, Payload: payload})
	}
	workers := make([]int, 0, len(c.cursors))
	for w := range c.cursors {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		cs := c.cursors[w]
		payload := binary.AppendUvarint(nil, uint64(w))
		payload = binary.AppendUvarint(payload, uint64(cs.completed))
		payload = append(payload, cs.blob...)
		records = append(records, Record{Kind: recCursor, Payload: payload})
	}
	if c.hasCounters {
		records = append(records, Record{Kind: recCounters, Payload: encodeCounters(nil, c.counters)})
	}
	ckpts := c.checkpoints
	for len(ckpts) > maxCheckpointsKept {
		kept := make([]Checkpoint, 0, (len(ckpts)+1)/2)
		for i := 1; i < len(ckpts); i += 2 {
			kept = append(kept, ckpts[i])
		}
		ckpts = kept
	}
	c.checkpoints = ckpts
	for _, cp := range ckpts {
		payload := binary.AppendUvarint(nil, uint64(cp.ElapsedMicros))
		payload = binary.AppendUvarint(payload, uint64(cp.Iterations))
		payload = binary.AppendUvarint(payload, uint64(cp.DistinctSchedules))
		payload = binary.AppendUvarint(payload, uint64(cp.CoveredTransitions))
		records = append(records, Record{Kind: recCheckpoint, Payload: payload})
	}
	if err := c.log.Rewrite(records); err != nil {
		return // latched in the log
	}
	c.total = len(records)
	c.dead = 0
}

// Sync flushes and fsyncs the shard file.
func (c *Campaign) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return c.log.Sync()
}

// Close syncs and closes the shard file, reporting any latched error.
func (c *Campaign) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	closeErr := c.log.Close()
	if c.err != nil {
		return c.err
	}
	return closeErr
}

func decodeCursor(p []byte) (worker, completed int, blob []byte, err error) {
	w, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, errors.New("short worker field")
	}
	p = p[n:]
	done, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, errors.New("short completed field")
	}
	p = p[n:]
	if len(p) > 0 {
		blob = append([]byte(nil), p...)
	}
	return int(w), int(done), blob, nil
}

func encodeCounters(buf []byte, ct Counters) []byte {
	for _, v := range []int64{
		ct.Iterations, ct.BuggyIterations, ct.BoundReached,
		ct.TotalSchedulingPoints, ct.MaxSchedulingPoints, ct.MaxMachines,
		ct.Crashes, ct.Restarts, ct.Drops, ct.Duplicates, ct.Reorders,
		ct.ElapsedMicros,
	} {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

func decodeCounters(p []byte) (Counters, error) {
	var vals [12]int64
	for i := range vals {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return Counters{}, fmt.Errorf("short counter field %d", i)
		}
		vals[i] = int64(v)
		p = p[n:]
	}
	return Counters{
		Iterations: vals[0], BuggyIterations: vals[1], BoundReached: vals[2],
		TotalSchedulingPoints: vals[3], MaxSchedulingPoints: vals[4], MaxMachines: vals[5],
		Crashes: vals[6], Restarts: vals[7], Drops: vals[8], Duplicates: vals[9],
		Reorders: vals[10], ElapsedMicros: vals[11],
	}, nil
}

func decodeCheckpoint(p []byte) (Checkpoint, error) {
	var vals [4]int64
	for i := range vals {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return Checkpoint{}, fmt.Errorf("short checkpoint field %d", i)
		}
		vals[i] = int64(v)
		p = p[n:]
	}
	return Checkpoint{
		ElapsedMicros: vals[0], Iterations: vals[1],
		DistinctSchedules: vals[2], CoveredTransitions: vals[3],
	}, nil
}

// State is the read-only merged view of a whole campaign directory, across
// every shard — what psharp-test prints after a journaled run and what
// tooling reads to track a long campaign.
type State struct {
	Meta Meta
	// Shards is the manifest's shard count; ShardsPresent how many have a
	// journal on disk.
	Shards        int
	ShardsPresent int
	// DistinctSchedules is the size of the union of all shards' journaled
	// fingerprint sets.
	DistinctSchedules int
	// Counters sums the newest counter record of every shard.
	Counters Counters
}

// ReadState recovers and merges every shard of the campaign in dir without
// taking ownership of any file.
func ReadState(dir string) (*State, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("journal: %s: %w", filepath.Join(dir, ManifestName), err)
	}
	if mf.Format != Version {
		return nil, &VersionError{Path: filepath.Join(dir, ManifestName), Version: uint32(mf.Format)}
	}
	st := &State{Meta: mf.Meta, Shards: mf.Shards}
	seen := make(map[uint64]struct{})
	for shard := 0; shard < mf.Shards; shard++ {
		records, _, err := RecoverFile(filepath.Join(dir, ShardFileName(shard, mf.Shards)))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		st.ShardsPresent++
		var last *Counters
		for _, r := range records {
			switch r.Kind {
			case recFingerprints:
				for i := 0; i+8 <= len(r.Payload); i += 8 {
					seen[binary.LittleEndian.Uint64(r.Payload[i:])] = struct{}{}
				}
			case recCounters:
				if ct, err := decodeCounters(r.Payload); err == nil {
					last = &ct
				}
			}
		}
		if last != nil {
			st.Counters.Iterations += last.Iterations
			st.Counters.BuggyIterations += last.BuggyIterations
			st.Counters.BoundReached += last.BoundReached
			st.Counters.TotalSchedulingPoints += last.TotalSchedulingPoints
			st.Counters.Crashes += last.Crashes
			st.Counters.Restarts += last.Restarts
			st.Counters.Drops += last.Drops
			st.Counters.Duplicates += last.Duplicates
			st.Counters.Reorders += last.Reorders
			st.Counters.MaxSchedulingPoints = max(st.Counters.MaxSchedulingPoints, last.MaxSchedulingPoints)
			st.Counters.MaxMachines = max(st.Counters.MaxMachines, last.MaxMachines)
			st.Counters.ElapsedMicros = max(st.Counters.ElapsedMicros, last.ElapsedMicros)
		}
	}
	st.DistinctSchedules = len(seen)
	return st, nil
}
