package psharp_test

// Acceptance tests for fault-injection nondeterminism: the seeded
// crash-only bug in TwoPhaseCommitFT(buggy) is invisible to fault-free
// exploration and found by fault-enabled exploration; fault traces replay
// byte-deterministically; and the correct variant never false-positives no
// matter how hard it is faulted.

import (
	"bytes"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

// TestFaultInjectionFindsCrashOnlyBug is the headline acceptance test: the
// buggy FT coordinator announces decisions before persisting them, a
// mistake no fault-free schedule can expose. 200 fault-free iterations see
// nothing; the same strategy with a crash budget finds the atomicity
// violation, and replaying the recorded trace reproduces the identical bug
// and the identical byte-level trace.
func TestFaultInjectionFindsCrashOnlyBug(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommitFT", true)

	faultFree := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:       sct.NewRandom(42),
		Iterations:     200,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: true,
	})
	if faultFree.FirstBug != nil {
		t.Fatalf("fault-free exploration found %v; the seeded bug must require a crash", faultFree.FirstBug)
	}

	rep := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:       sct.NewRandom(1),
		Iterations:     3000,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: true,
		Faults: sct.FaultOptions{
			Budget: 2, Seed: 1, Horizon: 64,
			Immune: b.FaultImmune, Restart: true,
		},
	})
	if rep.FirstBug == nil {
		t.Fatalf("fault-enabled exploration missed the seeded bug in %d iterations", rep.Iterations)
	}
	if rep.FirstBug.Kind != psharp.BugMonitor {
		t.Fatalf("found %v (kind %v), want the FTAtomicity monitor violation", rep.FirstBug, rep.FirstBug.Kind)
	}
	if rep.Faults.Crashes == 0 {
		t.Fatalf("run reports no crashes injected: %+v", rep.Faults)
	}
	if !rep.FirstBugTrace.HasFaultDecisions() {
		t.Fatal("the buggy trace records no fault decisions")
	}

	// Replay reproduces the same bug — and, because every fault query is
	// recorded (including the declines), the replayed iteration re-records a
	// byte-identical trace.
	res := sct.ReplayTrace(b.SetupMonitored(), rep.FirstBugTrace, psharp.TestConfig{MaxSteps: b.MaxSteps})
	if res.Bug == nil || res.Bug.Kind != rep.FirstBug.Kind || res.Bug.Message != rep.FirstBug.Message {
		t.Fatalf("replay did not reproduce the bug: got %v, want %v", res.Bug, rep.FirstBug)
	}
	var want, got bytes.Buffer
	if err := rep.FirstBugTrace.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("replayed trace is not byte-identical:\nrecorded:\n%s\nreplayed:\n%s", want.String(), got.String())
	}
}

// TestFaultCorrectVariantStaysClean hammers the crash-tolerant (correct)
// coordinator with a heavy fault load — crashes with restarts, preserved
// mailboxes, drops, duplicates, reorders — and requires zero violations:
// fault injection must not manufacture false positives against a program
// that actually follows the write-ahead discipline.
func TestFaultCorrectVariantStaysClean(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommitFT", false)
	rep := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:   sct.NewRandom(7),
		Iterations: 1500,
		MaxSteps:   b.MaxSteps,
		Faults: sct.FaultOptions{
			Budget: 4, Seed: 7, Horizon: 64,
			Immune: b.FaultImmune, Restart: true, PreserveMailbox: true,
		},
	})
	if rep.BuggyIterations != 0 {
		t.Fatalf("correct variant reported %d buggy iterations (first: %v)", rep.BuggyIterations, rep.FirstBug)
	}
	if rep.Faults.Crashes == 0 || rep.Faults.Restarts == 0 || rep.Faults.Total() < 100 {
		t.Fatalf("fault load did not materialize: %+v", rep.Faults)
	}
}

// TestFaultDeterminism runs the same 25 fault-injected iterations on two
// independently recycled harnesses and requires byte-identical traces:
// fault decisions are a pure function of (seed, iteration), so recycling
// and instance reuse must not leak state into the fault stream.
func TestFaultDeterminism(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommitFT", true)
	const iters = 25

	runAll := func() [][]byte {
		fi := sct.NewFaultInjector(sct.NewRandom(11), sct.FaultOptions{
			Budget: 2, Seed: 11, Horizon: 64,
			Immune: b.FaultImmune, Restart: true,
		})
		h := psharp.NewTestHarness(b.SetupMonitored())
		defer h.Close()
		var traces [][]byte
		for i := 0; i < iters; i++ {
			if !fi.PrepareIteration(i) {
				t.Fatalf("strategy refused iteration %d", i)
			}
			res := h.Run(psharp.TestConfig{
				Strategy: fi,
				MaxSteps: b.MaxSteps,
				Faults:   &psharp.FaultConfig{Immune: b.FaultImmune},
			})
			var buf bytes.Buffer
			if err := res.Trace.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			traces = append(traces, buf.Bytes())
		}
		return traces
	}

	first, second := runAll(), runAll()
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("iteration %d traces diverged between harnesses:\nfirst:\n%s\nsecond:\n%s",
				i, first[i], second[i])
		}
	}
}

// TestFaultReplayAutoEnablesFaults locks the ReplayTrace contract: a trace
// carrying fault decisions replays without the caller wiring any
// FaultConfig — the engine enables the fault path automatically, and the
// recorded actions (not a strategy) drive every injection.
func TestFaultReplayAutoEnablesFaults(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommitFT", true)
	rep := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:       sct.NewRandom(2),
		Iterations:     3000,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: true,
		Faults: sct.FaultOptions{
			Budget: 2, Seed: 2, Horizon: 64,
			Immune: b.FaultImmune, Restart: true,
		},
	})
	if rep.FirstBug == nil {
		t.Fatal("no buggy fault trace to replay")
	}
	// Note: zero-value TestConfig — no Faults field set.
	res := sct.ReplayTrace(b.SetupMonitored(), rep.FirstBugTrace, psharp.TestConfig{MaxSteps: b.MaxSteps})
	if res.Bug == nil || res.Bug.Message != rep.FirstBug.Message {
		t.Fatalf("replay without explicit FaultConfig got %v, want %v", res.Bug, rep.FirstBug)
	}
}
