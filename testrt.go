package psharp

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/psharp-go/psharp/internal/vclock"
	"github.com/psharp-go/psharp/obs"
)

// TestConfig configures one bug-finding iteration (paper Section 6.2).
type TestConfig struct {
	// Strategy makes scheduling and nondeterminism decisions. Required.
	Strategy Strategy
	// MaxSteps bounds the number of scheduling decisions per iteration
	// (the paper's depth bound); 0 means unbounded.
	MaxSteps int
	// LivelockAsBug reports reaching MaxSteps as a livelock bug, the
	// technique the paper used to detect the German livelock (Section
	// 7.2.2).
	LivelockAsBug bool
	// ChessLike enables CHESS-granularity scheduling: in addition to the
	// paper's send/create scheduling points, the runtime also schedules at
	// queue-lock and dequeue operations, as a tool instrumenting every
	// synchronizing operation must (Table 2 baseline).
	ChessLike bool
	// LivenessTemperature enables liveness checking against the registered
	// monitors' hot states: a monitor that stays hot for more than this many
	// consecutive scheduling decisions — or is still hot when the program
	// quiesces — fails the iteration with BugLiveness. 0 disables liveness
	// checking. The check is only meaningful under a fair schedule (an
	// unfair scheduler can starve the machine that would discharge the
	// obligation, reporting a spurious violation); pair it with
	// sct.RandomFair and set the threshold above the strategy's random
	// prefix plus a few fair scheduling rounds.
	LivenessTemperature int
	// RaceDetect runs the happens-before race detector over instrumented
	// Context.Read/Write accesses (the CHESS RD-on configuration).
	RaceDetect bool
	// RaceAsBug turns the first detected race into an iteration-ending bug.
	RaceAsBug bool
	// Interrupt, if non-nil, is polled at every scheduling point; when it
	// returns true the iteration is abandoned mid-schedule and the result is
	// marked Interrupted. The sct engine uses this to enforce hard wall-clock
	// deadlines and to cancel sibling workers in parallel exploration.
	Interrupt func() bool
	// Coverage, if non-nil, accumulates state-transition coverage: every
	// handled (machine type, state, event) dispatch of the iteration is
	// recorded into it. The set is safe for concurrent use, so parallel
	// exploration workers can share one and report campaign-wide coverage.
	Coverage *obs.StateEventCoverage
	// StateCache, if non-nil, is consulted at every scheduling decision
	// with a hash of the global state (machine FSM states, queue contents,
	// logic fields, monitor states and temperatures) and the decision
	// prefix that reached it; when Visit returns true the iteration is cut
	// short and reported with IterationResult.Pruned set. Only sound under
	// depth-first strategies (see the StateCache docs); incompatible with
	// Faults in this version.
	StateCache StateCache
	// Faults, if non-nil, enables fault-injection nondeterminism: the
	// controller issues a ChoiceFault query once per scheduler pass (crash?)
	// and once per machine-to-machine send (drop/duplicate/reorder?), and
	// records every answer — including declines — in the trace. Plain
	// Strategy values answer FaultNone to every query via the compatibility
	// adapter; to actually inject faults the strategy must implement
	// DecisionStrategy (see sct.FaultInjector). Replaying a fault-era trace
	// needs only a non-nil &FaultConfig{}: the recorded actions carry
	// everything else.
	Faults *FaultConfig
	// Log, if non-nil, receives the execution log of the iteration.
	Log io.Writer
}

// IterationResult reports one bug-finding iteration.
type IterationResult struct {
	// Bug is non-nil if the iteration ended in a failure.
	Bug *Bug
	// Interrupted reports that cfg.Interrupt abandoned the iteration before
	// it finished; the other fields describe the partial schedule.
	Interrupted bool
	// Pruned reports that cfg.StateCache cut the iteration short at a
	// revisited global state; the schedule prefix explored nothing new.
	Pruned bool
	// BoundReached reports that MaxSteps was hit before quiescence.
	BoundReached bool
	// SchedulingPoints is the number of scheduling decisions taken (the
	// paper's #SP column).
	SchedulingPoints int
	// Machines is the number of machine instances created.
	Machines int
	// Trace replays the iteration deterministically.
	Trace *Trace
	// Races lists data races found by the detector in RD-on mode.
	Races []string
	// Faults counts the failure actions injected during the iteration.
	Faults FaultStats
}

type yieldKind int

const (
	ykYield yieldKind = iota
	ykBlocked
	ykBug
	ykHalted
	ykCrashed
)

type yieldMsg struct {
	m    *machineInstance
	kind yieldKind
	bug  *Bug
}

type machineStatus int

const (
	msReady machineStatus = iota
	msBlocked
	msHalted
)

// controller serializes machine execution in bug-finding mode. Every machine
// goroutine parks on its resume channel; the controller wakes exactly one at
// a time and waits for it to yield (at a send/create scheduling point),
// block on an empty queue, halt, or fail. Writes to controller state from
// machine goroutines are ordered by the yield-channel handshakes, so no
// additional locking is needed.
type controller struct {
	rt    *Runtime
	cfg   TestConfig
	yield chan yieldMsg
	wg    sync.WaitGroup

	// instances mirrors rt.machines indexed by MachineID.Seq-1 but is owned
	// by the controller, so the scheduling loop never takes rt.mu.
	instances []*machineInstance
	statuses  []machineStatus // indexed by MachineID.Seq-1

	// ready is the incrementally maintained enabled set, kept sorted by
	// creation order (Seq); scratch is the reusable copy handed to
	// Strategy.NextMachine so strategies can never corrupt the ready list.
	ready   []MachineID
	scratch []MachineID

	// free holds recycled machine instances whose goroutines are parked on
	// their job channels, awaiting the next iteration.
	free []*machineInstance

	// freeMons holds recycled monitor instances by name, so a harness that
	// re-registers the same monitors every iteration reuses the instance and
	// its Context instead of reallocating them.
	freeMons map[string]*monitorInstance

	current     MachineID
	steps       int
	trace       *Trace
	bug         *Bug
	bound       bool
	interrupted bool
	det         *vclock.Detector

	// decider is the strategy as seen through the decision API: the
	// strategy itself if it implements DecisionStrategy, else legacy
	// wrapping it (embedded by value so the adapter never allocates).
	decider DecisionStrategy
	legacy  legacyDecider

	// faults counts injected failures; crashScratch is the reusable
	// crashable-machine list handed to schedule-level fault queries.
	faults       FaultStats
	crashScratch []MachineID

	// Step observation and state hashing (see statehash.go). observing is
	// true when either hook is active; stepObs is cfg.Strategy's
	// StepObserver view (nil otherwise); hasher is non-nil only when
	// cfg.StateCache is set. The step* fields accumulate the footprint of
	// the step currently executing and are reset just before each resume,
	// so environment-side setup activity never leaks into the first step.
	observing    bool
	stepObs      StepObserver
	hasher       *stateHasher
	pruned       bool
	stepTarget   MachineID
	stepCreated  MachineID
	stepObserved bool

	aborting atomic.Bool
}

func (c *controller) isAborting() bool { return c.aborting.Load() }

// acquireInstance returns a pooled machine instance (its goroutine already
// parked on the job channel) or spins up a fresh one. Execution is
// serialized, so no locking is needed around the freelist.
func (c *controller) acquireInstance(r *Runtime, id MachineID, logic Machine, schema *compiledSchema) *machineInstance {
	if n := len(c.free); n > 0 {
		m := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		m.id, m.logic, m.schema = id, logic, schema
		return m
	}
	m := newMachineInstance(r, id, logic, schema)
	m.job = make(chan Event)
	go m.poolLoop()
	return m
}

// acquireMonitor returns the parked monitor instance registered under name
// in a previous iteration, or nil if none. Execution is serialized, so no
// locking is needed around the pool.
func (c *controller) acquireMonitor(name string) *monitorInstance {
	mon := c.freeMons[name]
	if mon != nil {
		delete(c.freeMons, name)
	}
	return mon
}

// onCreate registers a newly created machine as ready to run its initial
// entry action. New machines carry the highest Seq so far, so appending
// keeps the ready list sorted by creation order.
func (c *controller) onCreate(m *machineInstance, creatorIdx int) {
	c.instances = append(c.instances, m)
	c.statuses = append(c.statuses, msReady)
	c.ready = append(c.ready, m.id)
	if c.det != nil {
		c.det.Fork(creatorIdx, int(m.id.Seq))
	}
}

// onEnqueue marks a machine blocked on an empty queue as runnable again.
func (c *controller) onEnqueue(m *machineInstance) {
	if c.statuses[m.id.Seq-1] == msBlocked {
		c.statuses[m.id.Seq-1] = msReady
		c.readyAdd(m.id)
	}
}

// readyAdd inserts id into the ready list at its creation-order position.
func (c *controller) readyAdd(id MachineID) {
	i := sort.Search(len(c.ready), func(i int) bool { return c.ready[i].Seq >= id.Seq })
	c.ready = append(c.ready, MachineID{})
	copy(c.ready[i+1:], c.ready[i:])
	c.ready[i] = id
}

// readyRemove deletes id from the ready list (no-op if absent).
func (c *controller) readyRemove(id MachineID) {
	i := sort.Search(len(c.ready), func(i int) bool { return c.ready[i].Seq >= id.Seq })
	if i >= len(c.ready) || c.ready[i].Seq != id.Seq {
		return
	}
	copy(c.ready[i:], c.ready[i+1:])
	c.ready = c.ready[:len(c.ready)-1]
}

// onDequeue feeds the happens-before edge from send to receive.
func (c *controller) onDequeue(m *machineInstance, env envelope) {
	if c.det != nil {
		c.det.Receive(int(m.id.Seq), env.clock)
	}
}

// setDecider caches the per-iteration view of cfg.Strategy through the
// decision API, avoiding the type assertion at every nondeterminism point.
func (c *controller) setDecider() {
	c.stepObs, _ = c.cfg.Strategy.(StepObserver)
	if c.cfg.StateCache != nil {
		if c.hasher == nil {
			c.hasher = newStateHasher()
		}
		c.hasher.reset()
	} else {
		c.hasher = nil
	}
	c.observing = c.stepObs != nil || c.hasher != nil
	c.pruned = false
	c.stepTarget, c.stepCreated, c.stepObserved = MachineID{}, MachineID{}, false
	if ds, ok := c.cfg.Strategy.(DecisionStrategy); ok {
		c.decider = ds
		return
	}
	c.legacy.s = c.cfg.Strategy
	c.decider = &c.legacy
}

func (c *controller) nextBool() bool {
	d := c.decider.Decide(Choice{Kind: ChoiceBool})
	if d.Kind != DecisionBool {
		panic(assertFailed{msg: fmt.Sprintf("strategy answered a bool choice with decision kind %d", d.Kind)})
	}
	c.trace.addBool(d.Bool)
	if h := c.hasher; h != nil {
		v := byte(0)
		if d.Bool {
			v = 1
		}
		h.prefix = fnvByte(fnvByte(h.prefix, 2), v)
		c.mixChoice(uint64(v) | 0x100)
	}
	return d.Bool
}

// mixChoice folds a nondeterministic-choice result into the currently
// running machine's mid-handler position hash: two continuations that drew
// different values are different program positions.
func (c *controller) mixChoice(v uint64) {
	if c.current.Seq == 0 {
		return
	}
	m := c.instances[c.current.Seq-1]
	m.hprog = fnvUint64(m.hprog, v)
}

func (c *controller) nextInt(n int) int {
	d := c.decider.Decide(Choice{Kind: ChoiceInt, N: n})
	if d.Kind != DecisionInt {
		panic(assertFailed{msg: fmt.Sprintf("strategy answered an int choice with decision kind %d", d.Kind)})
	}
	if d.Int < 0 || d.Int >= n {
		panic(assertFailed{msg: fmt.Sprintf("strategy returned %d for NextInt(%d)", d.Int, n)})
	}
	c.trace.addInt(d.Int)
	if h := c.hasher; h != nil {
		h.prefix = fnvUint64(fnvByte(h.prefix, 3), uint64(d.Int))
		c.mixChoice(uint64(d.Int) | 0x200000000)
	}
	return d.Int
}

// anyQueuedWhileBlocked detects the deadlock case: machines hold only
// deferred events and nobody is runnable. It reads the controller-owned
// instances slice, so no runtime lock or copy is needed.
func (c *controller) anyQueuedWhileBlocked() *machineInstance {
	for i, st := range c.statuses {
		if st != msBlocked {
			continue
		}
		m := c.instances[i]
		m.mu.Lock()
		n := len(m.queue)
		m.mu.Unlock()
		if n > 0 {
			return m
		}
	}
	return nil
}

// loop is the scheduler: it repeatedly picks one enabled machine, wakes it,
// and processes its next yield.
func (c *controller) loop() {
	for c.bug == nil {
		if c.cfg.Interrupt != nil && c.cfg.Interrupt() {
			c.interrupted = true
			break
		}
		if len(c.ready) == 0 {
			if m := c.anyQueuedWhileBlocked(); m != nil {
				c.bug = &Bug{Kind: BugDeadlock, Machine: m.id, State: m.state,
					Message: "all machines blocked but deferred events remain queued"}
			} else if mon := c.hotMonitor(); mon != nil {
				// A finite execution ended with an undischarged liveness
				// obligation: nothing can ever discharge it now.
				c.bug = &Bug{Kind: BugLiveness, Monitor: mon.name, State: mon.state,
					Message: fmt.Sprintf("monitor still hot in state %q when the program quiesced", mon.state)}
			}
			break // quiescence: the program terminated naturally
		}
		if c.cfg.MaxSteps > 0 && c.steps >= c.cfg.MaxSteps {
			c.bound = true
			if c.cfg.LivelockAsBug {
				c.bug = &Bug{Kind: BugLivelock, Machine: c.current,
					Message: fmt.Sprintf("depth bound of %d scheduling points exceeded", c.cfg.MaxSteps)}
			}
			break
		}
		if c.hasher != nil && c.checkStateCache() {
			break
		}
		if c.cfg.Faults != nil {
			crashed := c.scheduleFault()
			if c.bug != nil {
				break
			}
			if crashed {
				// Start the pass over: the crash may have emptied the ready
				// set, and the next pass gets its own fault query.
				continue
			}
		}
		c.scratch = append(c.scratch[:0], c.ready...)
		d := c.decider.Decide(Choice{Kind: ChoiceMachine, Current: c.current, Enabled: c.scratch})
		if d.Kind != DecisionSchedule {
			c.bug = &Bug{Kind: BugPanic,
				Message: fmt.Sprintf("strategy answered a machine choice with decision kind %d", d.Kind)}
			break
		}
		next := d.Machine
		if !contains(c.scratch, next) {
			c.bug = &Bug{Kind: BugPanic, Machine: next,
				Message: fmt.Sprintf("strategy chose %s, which is not enabled", next)}
			break
		}
		c.trace.addSchedule(next)
		c.current = next
		c.steps++
		if c.observing {
			if h := c.hasher; h != nil {
				h.prefix = fnvUint64(fnvByte(h.prefix, 1), next.Seq)
			}
			c.stepTarget, c.stepCreated, c.stepObserved = MachineID{}, MachineID{}, false
		}
		m := c.instances[next.Seq-1]
		m.resume <- struct{}{}
		msg := <-c.yield
		switch msg.kind {
		case ykYield:
			// The machine stays in the ready set.
		case ykBlocked:
			c.statuses[msg.m.id.Seq-1] = msBlocked
			c.readyRemove(msg.m.id)
		case ykHalted:
			c.statuses[msg.m.id.Seq-1] = msHalted
			c.readyRemove(msg.m.id)
		case ykBug:
			c.statuses[msg.m.id.Seq-1] = msHalted
			c.readyRemove(msg.m.id)
			if c.bug == nil {
				// First bug wins: a monitor may already have failed this very
				// decision (observation runs before the machine's own panic),
				// and the specification violation is the primary report.
				c.bug = msg.bug
			}
		}
		if c.observing {
			c.noteStepEnd()
		}
		if c.cfg.LivenessTemperature > 0 && c.bug == nil {
			c.updateTemperatures()
		}
		if c.det != nil && c.cfg.RaceAsBug && c.bug == nil {
			if races := c.det.Races(); len(races) > 0 {
				c.bug = &Bug{Kind: BugDataRace, Machine: c.current, Message: races[0].String()}
			}
		}
	}
	c.teardown()
}

// hotMonitor returns a monitor currently in a hot state, if liveness
// checking is on; used at quiescence.
func (c *controller) hotMonitor() *monitorInstance {
	if c.cfg.LivenessTemperature <= 0 {
		return nil
	}
	for _, mon := range c.rt.monitors {
		if mon.hot {
			return mon
		}
	}
	return nil
}

// updateTemperatures advances hot-state temperature tracking by one
// scheduling decision: every monitor sitting in a hot state heats up by one
// degree, every other monitor is cold (its counter was already reset when it
// left the hot state). Crossing the threshold is the liveness violation —
// deterministic in the schedule, so the bug replays like any other.
func (c *controller) updateTemperatures() {
	for _, mon := range c.rt.monitors {
		if !mon.hot {
			continue
		}
		mon.temp++
		if mon.temp > c.cfg.LivenessTemperature {
			c.bug = &Bug{Kind: BugLiveness, Monitor: mon.name, State: mon.state,
				Message: fmt.Sprintf("monitor stayed hot in state %q for %d consecutive scheduling decisions (threshold %d)",
					mon.state, mon.temp, c.cfg.LivenessTemperature)}
			return
		}
	}
}

// noteSend records a machine-to-machine send as part of the executing
// step's footprint: the target's queue changed (dirty for hashing) and the
// sender's continuation advanced past the send.
func (c *controller) noteSend(sm *machineInstance, target MachineID, ev Event) {
	c.stepTarget = target
	if h := c.hasher; h != nil {
		sm.hprog = fnvUint64(fnvUint64(sm.hprog, target.Seq), h.typeID(eventKey(ev)))
		h.markDirtySeq(target.Seq)
	}
}

// noteCreate records a machine creation in the executing step's footprint.
// Environment-side creations during setup (creator nil) are pre-schedule
// and not part of any step.
func (c *controller) noteCreate(creator *machineInstance, id MachineID) {
	if creator == nil {
		return
	}
	c.stepCreated = id
	if c.hasher != nil {
		creator.hprog = fnvUint64(creator.hprog, id.Seq|0x8000000000000000)
	}
}

// noteStepEnd finishes one scheduling step's observation bookkeeping: the
// executed machine's component is stale (its state, queue or continuation
// moved), and the strategy learns the step's footprint.
func (c *controller) noteStepEnd() {
	if h := c.hasher; h != nil {
		h.markDirtySeq(c.current.Seq)
	}
	if c.stepObs != nil {
		c.stepObs.ObserveStep(StepOp{
			Machine:  c.current,
			Target:   c.stepTarget,
			Created:  c.stepCreated,
			Observed: c.stepObserved,
		})
	}
}

// checkStateCache hashes the current global state and asks cfg.StateCache
// whether it was already covered; a true answer prunes the iteration.
func (c *controller) checkStateCache() bool {
	if !c.cfg.StateCache.Visit(c.stateHash(), c.hasher.prefix, c.steps) {
		return false
	}
	c.pruned = true
	return true
}

// stateHash returns the hash of the global state at the current scheduling
// point: the XOR of cached per-machine components (rehashing only the
// machines dirtied since the last point) folded with every monitor's
// freshly hashed state.
func (c *controller) stateHash() uint64 {
	h := c.hasher
	for len(h.comps) < len(c.instances) {
		// Machines created since the last point: give them a slot and
		// hash them on this pass.
		h.comps = append(h.comps, 0)
		h.marked = append(h.marked, true)
		h.dirty = append(h.dirty, len(h.comps)-1)
	}
	for _, idx := range h.dirty {
		neu := h.hashMachine(c.instances[idx], c.statuses[idx])
		h.agg ^= h.comps[idx] ^ neu
		h.comps[idx] = neu
		h.marked[idx] = false
	}
	h.dirty = h.dirty[:0]
	s := h.agg
	for _, mon := range c.rt.monitors {
		s ^= h.hashMonitor(mon)
	}
	return s
}

// teardown unparks every live machine goroutine so it can observe the abort
// flag and unwind, then waits for all of them. It reads the controller-owned
// instances slice, so no runtime lock or copy is needed.
func (c *controller) teardown() {
	c.aborting.Store(true)
	for i, m := range c.instances {
		if c.statuses[i] == msHalted {
			continue // goroutine already finished the iteration
		}
		m.resume <- struct{}{}
	}
	c.wg.Wait()
}

func contains(ids []MachineID, id MachineID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// RunTest executes one bug-finding iteration: it builds a serialized
// runtime, runs setup (which registers machine types and creates the test
// harness machines), then schedules machines one at a time under
// cfg.Strategy until the program quiesces, a bug is found, or the depth
// bound is reached. This is the paper's embedded-scheduler testing mode
// (Section 6.2): fully automatic, no false positives, and the returned
// trace replays the iteration deterministically.
//
// RunTest is a thin wrapper over a one-shot TestHarness; callers running
// many iterations of the same program (like the sct engine) should hold a
// TestHarness so runtime machinery is recycled instead of rebuilt.
func RunTest(setup func(*Runtime), cfg TestConfig) IterationResult {
	h := NewTestHarness(setup)
	defer h.Close()
	return h.Run(cfg)
}
