package psharp

import "fmt"

// FaultConfig enables fault-injection nondeterminism for one bug-finding
// iteration (TestConfig.Faults). The zero value is valid: every machine is
// fault-eligible and the strategy decides everything else. Which faults are
// actually injected — and how many — is the strategy's business (see
// sct.FaultInjector for PCT-style budgeted injection); the config only
// shapes eligibility.
//
// Fault queries are issued on a fixed cadence whenever the config is
// non-nil: one schedule-level query per scheduler pass and one send-level
// query per machine-to-machine send. Queries against immune machines are
// still issued (marked ineligible) so the query sequence, and therefore the
// trace, is a function of the schedule alone — replaying a fault-era trace
// needs a non-nil FaultConfig but not the original Immune list.
type FaultConfig struct {
	// Immune lists machine types that faults must never touch: they cannot
	// be crashed, and messages sent to them cannot be dropped, duplicated
	// or reordered. Use it to protect the abstraction of a reliable
	// component (a write-ahead log, a network oracle) while the rest of
	// the system misbehaves.
	Immune []string
}

func (fc *FaultConfig) isImmune(machineType string) bool {
	for _, t := range fc.Immune {
		if t == machineType {
			return true
		}
	}
	return false
}

// FaultStats counts the failure actions injected during an iteration (or,
// summed, a whole exploration run).
type FaultStats struct {
	Crashes    int
	Restarts   int
	Drops      int
	Duplicates int
	Reorders   int
}

// Add accumulates o into s.
func (s *FaultStats) Add(o FaultStats) {
	s.Crashes += o.Crashes
	s.Restarts += o.Restarts
	s.Drops += o.Drops
	s.Duplicates += o.Duplicates
	s.Reorders += o.Reorders
}

// Total returns the number of injected faults of all kinds.
func (s FaultStats) Total() int {
	return s.Crashes + s.Drops + s.Duplicates + s.Reorders
}

// scheduleFault issues the per-pass fault query and executes a crash if the
// strategy injects one. It returns true when a crash happened (the scheduler
// pass must start over) and reports strategy protocol violations through
// c.bug. Runs on the controller goroutine with every machine parked.
func (c *controller) scheduleFault() bool {
	fc := c.cfg.Faults
	c.crashScratch = c.crashScratch[:0]
	for i, st := range c.statuses {
		if st == msHalted {
			continue
		}
		m := c.instances[i]
		if fc.isImmune(m.id.Type) {
			continue
		}
		c.crashScratch = append(c.crashScratch, m.id)
	}
	ch := Choice{
		Kind:      ChoiceFault,
		Point:     FaultPointSchedule,
		Crashable: c.crashScratch,
		Eligible:  len(c.crashScratch) > 0,
	}
	d := c.decider.Decide(ch)
	if d.Kind != DecisionFault {
		c.bug = &Bug{Kind: BugPanic,
			Message: fmt.Sprintf("strategy answered a fault choice with decision kind %d", d.Kind)}
		return false
	}
	f := d.Fault
	if f.Kind == FaultNone {
		c.trace.addFault(FaultAction{})
		return false
	}
	if f.Kind != FaultCrash {
		c.bug = &Bug{Kind: BugPanic,
			Message: fmt.Sprintf("strategy injected %s at a schedule fault point (only crash is valid here)", f.Kind)}
		return false
	}
	if !ch.Eligible || !contains(c.crashScratch, f.Machine) {
		c.bug = &Bug{Kind: BugPanic, Machine: f.Machine,
			Message: fmt.Sprintf("strategy crashed %s, which is not crashable", f.Machine)}
		return false
	}
	// Canonicalize: preserving a mailbox only means something across a
	// restart, and the recorded action must be self-contained for replay.
	if !f.Restart {
		f.PreserveMailbox = false
	}
	c.trace.addFault(f)
	c.crashMachine(f)
	return true
}

// crashMachine halts the target mid-schedule. All machine goroutines are
// parked, so the crash is a synchronous handshake: set the crashed flag,
// wake the goroutine, and wait for it to unwind (crashSignal panic through
// park) and report ykCrashed. The instance is then marked halted — and
// optionally rebooted in place.
func (c *controller) crashMachine(f FaultAction) {
	m := c.instances[f.Machine.Seq-1]
	// Monitors observe the lifecycle event before the crash takes effect,
	// mirroring how sends are observed before delivery. A monitor state
	// with no binding for MachineCrashed skips it.
	c.rt.observeMonitors(&MachineCrashed{Machine: m.id, Restart: f.Restart})
	c.faults.Crashes++
	m.crashed = true
	m.resume <- struct{}{}
	<-c.yield // the crashed machine's ykCrashed: execution stays serialized
	c.statuses[m.id.Seq-1] = msHalted
	c.readyRemove(m.id)
	m.mu.Lock()
	m.halted = true
	if !f.PreserveMailbox {
		for i := range m.queue {
			m.queue[i] = envelope{}
		}
		m.queue = m.queue[:0]
	}
	m.mu.Unlock()
	if c.rt.logging() {
		c.rt.logf("fault: crashed %s (restart=%v, keepq=%v)", m.id, f.Restart, f.PreserveMailbox)
	}
	if f.Restart {
		c.restartMachine(m)
	}
}

// restartMachine reboots a crashed instance in place: same MachineID (so
// peers' stored references stay valid, modeling a process restart), fresh
// logic from the registered factory, and the creation payload re-delivered
// so the machine reconfigures itself. The pooled goroutine just finished
// run() for the crashed incarnation and is back in poolLoop awaiting a job.
func (c *controller) restartMachine(m *machineInstance) {
	r := c.rt
	factory := r.factories[m.id.Type]
	if factory == nil {
		c.bug = &Bug{Kind: BugPanic, Machine: m.id,
			Message: fmt.Sprintf("cannot restart %s: machine type not registered", m.id)}
		return
	}
	logic := factory()
	schema := r.schemas[m.id.Type]
	if schema == nil {
		// Closure-form machines compile a per-instance schema whose actions
		// close over the logic value, so the new incarnation needs its own.
		var err error
		r.mu.Lock()
		schema, err = r.compileInstanceLocked(m.id.Type, logic)
		r.mu.Unlock()
		if err != nil {
			c.bug = &Bug{Kind: BugPanic, Machine: m.id,
				Message: fmt.Sprintf("cannot restart %s: %v", m.id, err)}
			return
		}
	}
	m.logic = logic
	m.schema = schema
	m.state = ""
	m.crashed = false
	m.bug = nil
	m.aborted = false
	m.ctx.currentEvent = nil
	m.ctx.resetPending()
	m.mu.Lock()
	m.halted = false
	m.mu.Unlock()
	c.statuses[m.id.Seq-1] = msReady
	c.readyAdd(m.id)
	c.wg.Add(1)
	c.faults.Restarts++
	m.job <- m.birth
	r.observeMonitors(&MachineRestarted{Machine: m.id})
	if r.logging() {
		r.logf("fault: restarted %s", m.id)
	}
}

// nextSendFault issues the per-send fault query for a message bound for
// target. Runs on the sending machine's goroutine (like nextBool), which is
// the only runnable goroutine, so trace appends stay serialized. Strategy
// protocol violations panic assertFailed, which run's recover converts to a
// bug like any other in-action failure.
func (c *controller) nextSendFault(target MachineID) FaultAction {
	ch := Choice{
		Kind:     ChoiceFault,
		Point:    FaultPointSend,
		Target:   target,
		Eligible: !c.cfg.Faults.isImmune(target.Type),
	}
	d := c.decider.Decide(ch)
	if d.Kind != DecisionFault {
		panic(assertFailed{msg: fmt.Sprintf("strategy answered a fault choice with decision kind %d", d.Kind)})
	}
	f := d.Fault
	switch f.Kind {
	case FaultNone, FaultDrop, FaultDuplicate, FaultReorder:
	default:
		panic(assertFailed{msg: fmt.Sprintf("strategy injected %s at a send fault point (only drop/dup/reorder are valid here)", f.Kind)})
	}
	if !ch.Eligible && f.Kind != FaultNone {
		panic(assertFailed{msg: fmt.Sprintf("strategy injected %s on a send to immune machine %s", f.Kind, target)})
	}
	// Canonicalize the crash-only fields so the recorded action is exactly
	// the send-fault kind.
	f = FaultAction{Kind: f.Kind}
	c.trace.addFault(f)
	return f
}
